package tune

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// NewServer wraps a Manager in an HTTP/JSON API (the cmd/tuned server):
//
//	POST   /v1/sessions                {"id": "...", "config": {...}}
//	GET    /v1/sessions                list sessions
//	GET    /v1/sessions/{id}           session info
//	DELETE /v1/sessions/{id}           drop a session
//	POST   /v1/sessions/{id}/suggest   → Advice
//	POST   /v1/sessions/{id}/report    ← Outcome, → {"iter": n}
//	GET    /v1/sessions/{id}/rollout   → canary rollout status
//	GET    /v1/sessions/{id}/snapshot  → versioned snapshot JSON
//	GET    /v1/backends                registered backend names
//	GET    /v1/knowledge/stats         fleet knowledge base counters
//	GET    /v1/knowledge/export        fleet knowledge snapshot JSON
//	POST   /v1/knowledge/import        ← knowledge snapshot, → {"merged": n}
//	GET    /healthz                    readiness probe
//
// Errors are returned as {"error": "..."} with a 4xx/5xx status.
func NewServer(m *Manager) http.Handler {
	mux := http.NewServeMux()

	// Readiness probe: by the time the server is listening, the manager
	// has registered every durable session (hydration is lazy), so a 200
	// means sessions are servable. CI and orchestration poll this
	// instead of sleeping; loadgen asserts on the residency counters.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := m.Stats()
		resp := map[string]any{
			"status":           "ok",
			"sessions":         st.Sessions,
			"hydrated":         st.Hydrated,
			"evicted":          st.Evicted,
			"checkpoint_bytes": st.CheckpointBytes,
			"fsyncs":           st.Fsyncs,
			"group_commits":    st.GroupCommits,
			"degraded_commits": st.DegradedCommits,
		}
		if st.Knowledge != nil {
			resp["knowledge_entries"] = st.Knowledge.Entries
			resp["knowledge_contributions"] = st.Knowledge.Contributions
			resp["knowledge_warm_starts"] = st.Knowledge.WarmStarts
			resp["knowledge_bytes"] = st.Knowledge.Bytes
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /v1/backends", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"backends": Backends(), "spaces": Spaces()})
	})

	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"sessions": m.List()})
	})

	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ID     string `json:"id"`
			Config Config `json:"config"`
		}
		if err := decodeBody(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s, err := m.Create(req.ID, req.Config)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, sessionInfo(req.ID, s))
	})

	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s, err := m.Get(id)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, sessionInfo(id, s))
	})

	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Delete(r.PathValue("id")); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"deleted": true})
	})

	mux.HandleFunc("POST /v1/sessions/{id}/suggest", func(w http.ResponseWriter, r *http.Request) {
		adv, err := m.Suggest(r.Context(), r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, adv)
	})

	mux.HandleFunc("POST /v1/sessions/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		var o Outcome
		if err := decodeBody(r, &o); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		iter, err := m.Report(r.PathValue("id"), o)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"iter": iter})
	})

	mux.HandleFunc("GET /v1/sessions/{id}/rollout", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Rollout(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		data, err := m.Snapshot(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	})

	mux.HandleFunc("GET /v1/knowledge/stats", func(w http.ResponseWriter, r *http.Request) {
		st, ok := m.KnowledgeStats()
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("fleet knowledge base disabled"))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/knowledge/export", func(w http.ResponseWriter, r *http.Request) {
		data, err := m.KnowledgeExport()
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	})

	mux.HandleFunc("POST /v1/knowledge/import", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxImportBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		n, err := m.KnowledgeImport(data)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"merged": n})
	})

	return mux
}

// maxImportBytes bounds a knowledge-import body; the store's caps keep
// any honest export far below this.
const maxImportBytes = 64 << 20

// decodeBody parses a JSON request body, rejecting unknown fields so
// typos in knob or option names fail loudly.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("parsing request body: %w", err)
	}
	return nil
}

// statusFor maps manager errors onto HTTP statuses via the sentinel
// errors, so error-message wording never changes API semantics.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrExists):
		return http.StatusConflict
	case errors.Is(err, ErrInvalid):
		return http.StatusBadRequest
	case errors.Is(err, ErrDurability):
		// The session advanced but the checkpoint did not stick: clients
		// should back off and NOT resubmit the same interval.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func sessionInfo(id string, s *Session) SessionInfo {
	cfg := s.Config()
	info := SessionInfo{ID: id, Backend: cfg.Backend, Space: cfg.Space, Iter: s.Iter()}
	return info.withRollout(cfg.rolloutMode(), s.RolloutPhase())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// durabilityRetryAfter is the backoff hint on 503 responses. A
// durability failure needs operator attention (disk full, I/O errors) —
// a few seconds keeps honest clients from hammering a degraded store
// while staying short enough that recovery is noticed quickly.
const durabilityRetryAfter = "5"

func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", durabilityRetryAfter)
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
