package tune

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dbsim"
	"repro/internal/knobs"
	"repro/internal/rollout"
	"repro/internal/workload"
)

// bgStep drives one suggest → eval → report interval of a bluegreen
// session through the NEW wire surface: the staged replica's target
// comes from Advice.Targets and both measurements go back role-keyed in
// Outcome.Measurements (no flat Performance/Shadow fields at all).
// Switchover intervals apply the cache-cold penalty to the serving
// replica, as a real orchestrator would observe.
func bgStep(t *testing.T, s *Session, serving, staged *dbsim.Instance, gen workload.Generator, i int) Advice {
	t.Helper()
	adv, err := s.Suggest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	w := gen.At(i)
	opt := dbsim.EvalOptions{}
	if adv.RolloutPhase == RolloutSwitchover {
		opt.SwitchoverColdSec = dbsim.DefaultSwitchoverColdSec
	}
	pt, ok := adv.Targets[RolePrimary]
	if adv.RolloutPhase != "" && (!ok || !reflect.DeepEqual(pt.Config, adv.Config)) {
		t.Fatalf("iter %d: Targets[primary] %+v does not mirror Config %+v", i, pt, adv.Config)
	}
	res := serving.Eval(adv.Config, w, opt)
	dba := serving.DBAResult(w)
	o := Outcome{
		Workload: WorkloadFromSnapshot(w),
		Stats:    serving.OptimizerStats(w),
		Metrics:  res.Metrics,
		Baseline: dba.Objective(w.OLAP),
		Measurements: map[Role]ReplicaPerf{
			RolePrimary: {Performance: res.Objective(w.OLAP), Failed: res.Failed},
		},
	}
	if st, ok := adv.Targets[RoleStaged]; ok {
		if !reflect.DeepEqual(st.Config, adv.ShadowConfig) {
			t.Fatalf("iter %d: Targets[staged] %+v diverges from deprecated ShadowConfig %+v", i, st.Config, adv.ShadowConfig)
		}
		sres := staged.Eval(st.Config, w, dbsim.EvalOptions{})
		o.Measurements[RoleStaged] = ReplicaPerf{Performance: sres.Objective(w.OLAP), Failed: sres.Failed}
	}
	if err := s.Report(o); err != nil {
		t.Fatal(err)
	}
	return adv
}

// TestSessionBlueGreenEndToEnd drives a bluegreen session through the
// simulator via the role-keyed wire surface: candidates tune on the
// green replica while blue serves, promotions swap the roles through an
// explicit switchover, and the whole run snapshots and restores.
func TestSessionBlueGreenEndToEnd(t *testing.T) {
	cfg := Config{Space: "case5", Seed: 7, Rollout: &RolloutConfig{Mode: RolloutModeBlueGreen}}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Rollout()
	if st.Mode != RolloutModeBlueGreen || len(st.Replicas) != 2 {
		t.Fatalf("fresh bluegreen status: %+v", st)
	}
	if st.Replicas[0].Name != "blue" || st.Replicas[1].Name != "green" {
		t.Fatalf("replica names: %+v", st.Replicas)
	}

	serving := dbsim.New(knobs.CaseStudy5(), 9)
	staged := dbsim.New(knobs.CaseStudy5(), 1009)
	gen := workload.NewYCSB(5)
	phases := map[string]int{}
	for i := 0; i < 120; i++ {
		adv := bgStep(t, s, serving, staged, gen, i)
		if adv.RolloutPhase == "" {
			t.Fatalf("iter %d: bluegreen advice without a phase", i)
		}
		if adv.RolloutPhase == RolloutCanary {
			t.Fatalf("iter %d: bluegreen session reported the canary phase", i)
		}
		phases[adv.RolloutPhase]++
	}
	if phases[RolloutTuning] == 0 {
		t.Fatal("120 iterations never staged a candidate on the green replica")
	}
	st = s.Rollout()
	if st.Promotions+st.Rollbacks == 0 {
		t.Fatal("candidates tuned but no decision ever made")
	}
	// Every finished promotion performed its switchover (the last one
	// may still be in flight when the loop ends).
	if st.Promotions > 0 && st.Metrics.Switchovers < st.Promotions-1 {
		t.Fatalf("%d promotions but only %d switchovers", st.Promotions, st.Metrics.Switchovers)
	}
	if st.Metrics.Switchovers > 0 {
		if phases[RolloutSwitchover] == 0 {
			t.Fatal("switchovers recorded but no switchover-phase advice seen")
		}
		if st.Metrics.SwitchoverDowntime.Count != st.Metrics.Switchovers {
			t.Fatalf("downtime histogram %+v vs %d switchovers", st.Metrics.SwitchoverDowntime, st.Metrics.Switchovers)
		}
	}
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(data); err != nil {
		t.Fatalf("restoring bluegreen session: %v", err)
	}
}

// TestSnapshotRestoreBlueGreenProperty is the mid-switchover restart
// equivalence property: a bluegreen session is snapshotted and restored
// every 7 iterations AND whenever the controller sits in a switchover
// or revalidation window, so restores land on both boundary kinds. The
// fabricated outcomes force the full arc — two promotions building a
// previous-good chain, then a performance collapse that drives a chain
// rollback, a failed revalidation and finally the classic rollback to
// the anchor — and the restored session's advice must stay bitwise
// identical throughout.
func TestSnapshotRestoreBlueGreenProperty(t *testing.T) {
	cfg := Config{Space: "case5", Seed: 3, Rollout: &RolloutConfig{Mode: RolloutModeBlueGreen, Window: 2}}
	uninterrupted, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	interrupted, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	outcome := func(i int, perf, stagedPerf float64, primaryFailed bool, adv Advice) Outcome {
		o := Outcome{
			Workload: Workload{
				Statements: []Statement{{SQL: "SELECT c_balance FROM customer WHERE c_id = 42"}},
				Unlimited:  true, ReadFrac: 0.8, Skew: 0.5, DataGB: 18,
			},
			Stats:    OptimizerStats{RowsExamined: 120, FilterPct: 30, IndexUsedFrac: 1},
			Metrics:  Metrics{BufferPoolHitRate: 0.96, QPS: 20000},
			Baseline: 90,
			Measurements: map[Role]ReplicaPerf{
				RolePrimary: {Performance: perf, Failed: primaryFailed},
			},
		}
		if _, ok := adv.Targets[RoleStaged]; ok {
			o.Measurements[RoleStaged] = ReplicaPerf{Performance: stagedPerf}
		}
		return o
	}

	seen := map[string]bool{}
	restoredIn := map[string]int{}
	for i := 0; i < 400; i++ {
		st := uninterrupted.Rollout()
		phase := string(st.Phase)
		if i > 0 && (i%7 == 0 || phase == RolloutSwitchover || phase == RolloutRevalidate) {
			data, err := interrupted.Snapshot()
			if err != nil {
				t.Fatalf("iter %d: Snapshot: %v", i, err)
			}
			interrupted, err = Restore(data)
			if err != nil {
				t.Fatalf("iter %d (phase %s): Restore: %v", i, phase, err)
			}
			restoredIn[phase]++
		}
		a, err := uninterrupted.Suggest(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		b, err := interrupted.Suggest(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("iter %d: advice diverged after restore\nuninterrupted: %+v\nrestored:      %+v", i, a, b)
		}
		// Healthy replicas until two promotions stack a chain entry,
		// then a global collapse: a steady interval fails the serving
		// primary outright (forcing the drift rollback into the chain
		// walk) and the staged replica regresses too, so the chain
		// target's probation window fails and the walk unwinds down to
		// the classic anchor rollback. The failure is only injected on
		// steady intervals — a mid-window primary failure would clear
		// the chain instead of walking it.
		perf, stagedPerf := 105+float64(i%5), 130.0
		failedPrimary := false
		if st.Promotions >= 2 {
			perf, stagedPerf = 50, 50
			_, stagedActive := a.Targets[RoleStaged]
			failedPrimary = !stagedActive && a.RolloutPhase == RolloutSteady
		}
		if err := uninterrupted.Report(outcome(i, perf, stagedPerf, failedPrimary, a)); err != nil {
			t.Fatal(err)
		}
		if err := interrupted.Report(outcome(i, perf, stagedPerf, failedPrimary, b)); err != nil {
			t.Fatal(err)
		}
		if ev := uninterrupted.Rollout().LastEvent; ev != nil {
			seen[ev.Kind] = true
		}
		if seen[rollout.EventSwitchover] && seen[rollout.EventChainRollback] && seen[rollout.EventRollback] && i%7 == 1 {
			break
		}
	}
	for _, kind := range []string{rollout.EventSwitchover, rollout.EventChainRollback, rollout.EventRollback} {
		if !seen[kind] {
			t.Fatalf("property run never exercised a %s decision (saw %v)", kind, seen)
		}
	}
	if restoredIn[RolloutSwitchover] == 0 || restoredIn[RolloutRevalidate] == 0 {
		t.Fatalf("restores never landed on a switchover and a revalidation boundary: %v", restoredIn)
	}
	sa, sb := uninterrupted.Rollout(), interrupted.Rollout()
	if sa.Phase != sb.Phase || sa.Promotions != sb.Promotions || sa.Rollbacks != sb.Rollbacks ||
		sa.ChainDepth != sb.ChainDepth || !reflect.DeepEqual(sa.Metrics, sb.Metrics) {
		t.Fatalf("rollout state diverged:\n%+v\n%+v", sa, sb)
	}
}

// TestSnapshotV4ForwardCompat pins forward compatibility for the last
// pre-bluegreen format: a committed version-4 snapshot of a
// rollout-enabled session (its config predates the mode field) must
// restore with the mode defaulted to canary and re-snapshot at the
// current version.
func TestSnapshotV4ForwardCompat(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "snapshot_v4.json"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Restore(data)
	if err != nil {
		t.Fatalf("restoring v4 snapshot: %v", err)
	}
	if s.Iter() != 3 {
		t.Fatalf("restored iter = %d, want 3", s.Iter())
	}
	st := s.Rollout()
	if st.Mode != RolloutModeCanary {
		t.Fatalf("v4 session rollout mode = %q, want canary (defaulted)", st.Mode)
	}
	if st.Promotions != 1 {
		t.Fatalf("v4 session promotions = %d, want 1", st.Promotions)
	}
	if _, err := s.Suggest(context.Background()); err != nil {
		t.Fatal(err)
	}
	reSnap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(reSnap, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != SnapshotVersion {
		t.Fatalf("re-snapshot version = %d, want %d", doc.Version, SnapshotVersion)
	}
}

// TestOutcomeWireCompat pins the report-body compatibility contract:
// the deprecated flat form (performance/failed + shadow) and the
// role-keyed Measurements form must drive two identical sessions to
// bitwise-identical advice, and both bodies must survive the server's
// strict unknown-field decoding.
func TestOutcomeWireCompat(t *testing.T) {
	cfg := Config{Space: "case5", Seed: 3, Rollout: &RolloutConfig{Window: 2}}
	oldStyle, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	newStyle, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		a, err := oldStyle.Suggest(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		b, err := newStyle.Suggest(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("iter %d: advice diverged between wire forms\nold: %+v\nnew: %+v", i, a, b)
		}
		base := Outcome{
			Workload: Workload{
				Statements: []Statement{{SQL: "SELECT c_balance FROM customer WHERE c_id = 42"}},
				Unlimited:  true, ReadFrac: 0.8, Skew: 0.5, DataGB: 18,
			},
			Stats:    OptimizerStats{RowsExamined: 120, FilterPct: 30, IndexUsedFrac: 1},
			Metrics:  Metrics{BufferPoolHitRate: 0.96, QPS: 20000},
			Baseline: 90,
		}
		perf := 105 + float64(i%5)
		ofl, onw := base, base
		ofl.Performance = perf
		onw.Measurements = map[Role]ReplicaPerf{RolePrimary: {Performance: perf}}
		if a.RolloutPhase == RolloutCanary {
			ofl.Shadow = &ShadowOutcome{Performance: 130}
			onw.Measurements[RoleStaged] = ReplicaPerf{Performance: 130}
		}
		// Both forms must pass the server's DisallowUnknownFields gate.
		for _, o := range []Outcome{ofl, onw} {
			body, err := json.Marshal(o)
			if err != nil {
				t.Fatal(err)
			}
			dec := json.NewDecoder(bytes.NewReader(body))
			dec.DisallowUnknownFields()
			var rt Outcome
			if err := dec.Decode(&rt); err != nil {
				t.Fatalf("iter %d: outcome does not round-trip strict decoding: %v\n%s", i, err, body)
			}
		}
		if err := oldStyle.Report(ofl); err != nil {
			t.Fatal(err)
		}
		if err := newStyle.Report(onw); err != nil {
			t.Fatal(err)
		}
	}
	sa, sb := oldStyle.Rollout(), newStyle.Rollout()
	if sa.Promotions != sb.Promotions || sa.Rollbacks != sb.Rollbacks || sa.Phase != sb.Phase {
		t.Fatalf("rollout state diverged between wire forms: %+v vs %+v", sa, sb)
	}
	if sa.Promotions == 0 {
		t.Fatal("compat run never promoted — the staged measurements were not consumed")
	}
}

// TestAdviceWireGolden pins the advice wire format: the role-keyed
// targets map and the deprecated flat shadow fields are both emitted,
// with exactly these names.
func TestAdviceWireGolden(t *testing.T) {
	adv := Advice{
		Iter:         4,
		Backend:      "onlinetune",
		Config:       KnobConfig{"innodb_buffer_pool_size": 12884901888},
		Unit:         []float64{0.75},
		RolloutPhase: RolloutTuning,
		Targets: map[Role]ConfigRef{
			RolePrimary: {Config: KnobConfig{"innodb_buffer_pool_size": 12884901888}, Unit: []float64{0.75}},
			RoleStaged:  {Config: KnobConfig{"innodb_buffer_pool_size": 17179869184}, Unit: []float64{1}},
		},
		ShadowConfig: KnobConfig{"innodb_buffer_pool_size": 17179869184},
		ShadowUnit:   []float64{1},
	}
	got, err := json.MarshalIndent(adv, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	const want = `{
  "iter": 4,
  "backend": "onlinetune",
  "config": {
    "innodb_buffer_pool_size": 12884901888
  },
  "unit": [
    0.75
  ],
  "rollout_phase": "tuning",
  "targets": {
    "primary": {
      "config": {
        "innodb_buffer_pool_size": 12884901888
      },
      "unit": [
        0.75
      ]
    },
    "staged": {
      "config": {
        "innodb_buffer_pool_size": 17179869184
      },
      "unit": [
        1
      ]
    }
  },
  "shadow_config": {
    "innodb_buffer_pool_size": 17179869184
  },
  "shadow_unit": [
    1
  ]
}`
	if string(got) != want {
		t.Fatalf("advice wire form drifted:\n got: %s\nwant: %s", got, want)
	}
}

// TestBlueGreenOverHTTP mirrors the CI api-smoke bluegreen flow
// in-process: session info carries the nested rollout object alongside
// the deprecated flat phase, and the rollout endpoint reports mode,
// replica roles, chain depth and the switchover metrics.
func TestBlueGreenOverHTTP(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	cfg := Config{Space: "case5", Seed: 3, Rollout: &RolloutConfig{Mode: RolloutModeBlueGreen, Window: 2}}
	var raw json.RawMessage
	doJSON(t, srv, "POST", "/v1/sessions", map[string]any{"id": "bg", "config": cfg}, http.StatusCreated, &raw)
	for _, frag := range []string{`"rollout_phase": "steady"`, `"mode": "bluegreen"`, `"phase": "steady"`} {
		if !strings.Contains(string(raw), frag) {
			t.Fatalf("session info missing %s:\n%s", frag, raw)
		}
	}
	var info SessionInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info.Rollout == nil || info.Rollout.Mode != RolloutModeBlueGreen || info.Rollout.Phase != RolloutSteady {
		t.Fatalf("nested rollout info: %+v", info.Rollout)
	}
	if info.RolloutPhase != RolloutSteady {
		t.Fatalf("deprecated flat phase = %q", info.RolloutPhase)
	}

	// A session without rollout keeps the nested object for the direct
	// phase and an invalid mode is rejected up front.
	var plain SessionInfo
	doJSON(t, srv, "POST", "/v1/sessions", map[string]any{"id": "plain", "config": Config{Space: "case5"}}, http.StatusCreated, &plain)
	if plain.Rollout == nil || plain.Rollout.Phase != RolloutDirect || plain.Rollout.Mode != "" {
		t.Fatalf("direct session rollout info: %+v", plain.Rollout)
	}
	doJSON(t, srv, "POST", "/v1/sessions",
		map[string]any{"id": "bad", "config": Config{Space: "case5", Rollout: &RolloutConfig{Mode: "purple"}}},
		http.StatusBadRequest, nil)

	var st RolloutStatus
	doJSON(t, srv, "GET", "/v1/sessions/bg/rollout", nil, http.StatusOK, &st)
	if st.Mode != RolloutModeBlueGreen || len(st.Replicas) != 2 || st.Replicas[0].Role != rollout.RoleServing {
		t.Fatalf("rollout status: %+v", st)
	}

	outcome := func(i int, staged bool) map[string]any {
		o := map[string]any{
			"workload": map[string]any{
				"statements": []map[string]any{{"sql": "SELECT c_balance FROM customer WHERE c_id = 42"}},
				"unlimited":  true, "read_frac": 0.8, "skew": 0.5, "data_gb": 18,
			},
			"optimizer_stats": map[string]any{"rows_examined": 120, "filter_pct": 30, "index_used_frac": 1},
			"metrics":         map[string]any{"buffer_pool_hit_rate": 0.96, "qps": 20000},
			"baseline":        90,
			"measurements":    map[string]any{"primary": map[string]any{"performance": 105 + float64(i%5)}},
		}
		if staged {
			o["measurements"].(map[string]any)["staged"] = map[string]any{"performance": 130}
		}
		return o
	}
	// Drive to a promotion; the switchover phase must surface over HTTP.
	sawSwitchover := false
	for i := 0; i < 200 && st.Promotions == 0; i++ {
		var adv Advice
		doJSON(t, srv, "POST", "/v1/sessions/bg/suggest", nil, http.StatusOK, &adv)
		if adv.RolloutPhase == RolloutSwitchover {
			sawSwitchover = true
		}
		_, staged := adv.Targets[RoleStaged]
		doJSON(t, srv, "POST", "/v1/sessions/bg/report", outcome(i, staged), http.StatusOK, nil)
		doJSON(t, srv, "GET", "/v1/sessions/bg/rollout", nil, http.StatusOK, &st)
	}
	if st.Promotions == 0 {
		t.Fatalf("no promotion within 200 iterations: %+v", st)
	}
	// Finish the switchover and check the recorded cost surfaces.
	for i := 0; i < 5 && st.Metrics.Switchovers == 0; i++ {
		var adv Advice
		doJSON(t, srv, "POST", "/v1/sessions/bg/suggest", nil, http.StatusOK, &adv)
		if adv.RolloutPhase == RolloutSwitchover {
			sawSwitchover = true
		}
		_, staged := adv.Targets[RoleStaged]
		doJSON(t, srv, "POST", "/v1/sessions/bg/report", outcome(i, staged), http.StatusOK, nil)
		doJSON(t, srv, "GET", "/v1/sessions/bg/rollout", nil, http.StatusOK, &st)
	}
	if !sawSwitchover {
		t.Fatal("switchover phase never surfaced in advice")
	}
	if st.Metrics.Switchovers != 1 || st.Metrics.PromoteLatency.Count != 1 {
		t.Fatalf("switchover metrics over HTTP: %+v", st.Metrics)
	}
	var rawSt json.RawMessage
	doJSON(t, srv, "GET", "/v1/sessions/bg/rollout", nil, http.StatusOK, &rawSt)
	for _, frag := range []string{`"mode": "bluegreen"`, `"replicas"`, `"promote_latency"`, `"switchover_downtime"`, `"chain_depth"`} {
		if !strings.Contains(string(rawSt), frag) {
			t.Fatalf("rollout wire form missing %s:\n%s", frag, rawSt)
		}
	}
}
