package tune

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dbsim"
	"repro/internal/knobs"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenOutcome builds a small fixed outcome for the schema golden test.
func goldenOutcome(i int) Outcome {
	return Outcome{
		Workload: Workload{
			Statements: []Statement{
				{SQL: "SELECT c_balance FROM customer WHERE c_id = 42", Weight: 3},
				{SQL: "UPDATE warehouse SET w_ytd = w_ytd + 7 WHERE w_id = 1", Weight: 1},
			},
			Unlimited: true,
			ReadFrac:  0.75,
			Skew:      0.5,
			DataGB:    18,
		},
		Stats:       OptimizerStats{RowsExamined: 120, FilterPct: 30, IndexUsedFrac: 1},
		Metrics:     Metrics{BufferPoolHitRate: 0.96, QPS: 20000 + float64(i)*100},
		Performance: 20000 + float64(i)*100,
		Baseline:    20000,
	}
}

// TestSnapshotGolden pins the versioned snapshot JSON schema: a small
// deterministic session must serialize to exactly the committed golden
// bytes. Schema changes are allowed only together with a version bump
// and a deliberate `go test ./tune -run Golden -update`.
func TestSnapshotGolden(t *testing.T) {
	s, err := NewSession(Config{Space: "case5", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Suggest(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := s.Report(goldenOutcome(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "snapshot_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./tune -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot schema drifted from golden file %s;\nif intentional, bump SnapshotVersion and re-run with -update\ngot:\n%s", path, got)
	}

	// The snapshot must parse and carry the documented top-level schema.
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"version", "kind", "config", "iter", "events", "state"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("snapshot missing %q section", key)
		}
	}
	var st sessionState
	if err := json.Unmarshal(doc["state"], &st); err != nil {
		t.Fatal(err)
	}
	if st.Observations != 3 || len(st.Models) == 0 || len(st.Vocabulary) == 0 {
		t.Fatalf("state summary incomplete: %d obs, %d models, %d tokens",
			st.Observations, len(st.Models), len(st.Vocabulary))
	}
}

// TestSnapshotRestoreProperty is the round-trip property test: over 100
// iterations on two workloads, a session that is snapshotted, restored
// and continued every 10 iterations must produce advice bitwise
// identical to an uninterrupted session.
func TestSnapshotRestoreProperty(t *testing.T) {
	workloads := []struct {
		name string
		gen  func() workload.Generator
	}{
		{"ycsb", func() workload.Generator { return workload.NewYCSB(5) }},
		{"tpcc", func() workload.Generator { return workload.NewTPCC(5, true) }},
	}
	const iters = 100
	for _, wl := range workloads {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			cfg := Config{Space: "case5", Seed: 7}
			uninterrupted, err := NewSession(cfg)
			if err != nil {
				t.Fatal(err)
			}
			interrupted, err := NewSession(cfg)
			if err != nil {
				t.Fatal(err)
			}

			inA := dbsim.New(knobs.CaseStudy5(), 9)
			inB := dbsim.New(knobs.CaseStudy5(), 9)
			genA, genB := wl.gen(), wl.gen()

			step := func(s *Session, in *dbsim.Instance, gen workload.Generator, i int) Advice {
				adv, err := s.Suggest(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				w := gen.At(i)
				res := in.Eval(adv.Config, w, dbsim.EvalOptions{})
				dba := in.DBAResult(w)
				if err := s.Report(Outcome{
					Workload:    WorkloadFromSnapshot(w),
					Stats:       in.OptimizerStats(w),
					Metrics:     res.Metrics,
					Performance: res.Objective(w.OLAP),
					Baseline:    dba.Objective(w.OLAP),
					Failed:      res.Failed,
				}); err != nil {
					t.Fatal(err)
				}
				return adv
			}

			for i := 0; i < iters; i++ {
				if i > 0 && i%10 == 0 {
					data, err := interrupted.Snapshot()
					if err != nil {
						t.Fatalf("iter %d: Snapshot: %v", i, err)
					}
					interrupted, err = Restore(data)
					if err != nil {
						t.Fatalf("iter %d: Restore: %v", i, err)
					}
				}
				a := step(uninterrupted, inA, genA, i)
				b := step(interrupted, inB, genB, i)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("iter %d: advice diverged after restore\nuninterrupted: %+v\nrestored:      %+v", i, a, b)
				}
			}
			if uninterrupted.Iter() != iters || interrupted.Iter() != iters {
				t.Fatal("iteration counts diverged")
			}
		})
	}
}

// TestSnapshotRestorePG16 pins the restart-equivalence property for the
// PostgreSQL engine: a "pg16" session snapshotted and restored every 10
// iterations produces advice bitwise identical to an uninterrupted one
// (the pg16 space name, engine-tagged rules and PG simulator metrics all
// round-trip through the snapshot).
func TestSnapshotRestorePG16(t *testing.T) {
	cfg := Config{Space: "pg16", Seed: 11}
	uninterrupted, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	interrupted, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inA := dbsim.New(knobs.Postgres16(), 13)
	inB := dbsim.New(knobs.Postgres16(), 13)
	genA, genB := workload.NewTPCC(11, true), workload.NewTPCC(11, true)

	step := func(s *Session, in *dbsim.Instance, gen workload.Generator, i int) Advice {
		adv, err := s.Suggest(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		w := gen.At(i)
		res := in.Eval(adv.Config, w, dbsim.EvalOptions{})
		dba := in.DBAResult(w)
		if err := s.Report(Outcome{
			Workload:    WorkloadFromSnapshot(w),
			Stats:       in.OptimizerStats(w),
			Metrics:     res.Metrics,
			Performance: res.Objective(w.OLAP),
			Baseline:    dba.Objective(w.OLAP),
			Failed:      res.Failed,
		}); err != nil {
			t.Fatal(err)
		}
		return adv
	}

	const iters = 40
	for i := 0; i < iters; i++ {
		if i > 0 && i%10 == 0 {
			data, err := interrupted.Snapshot()
			if err != nil {
				t.Fatalf("iter %d: Snapshot: %v", i, err)
			}
			interrupted, err = Restore(data)
			if err != nil {
				t.Fatalf("iter %d: Restore: %v", i, err)
			}
		}
		a := step(uninterrupted, inA, genA, i)
		b := step(interrupted, inB, genB, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("iter %d: pg16 advice diverged after restore\nuninterrupted: %+v\nrestored:      %+v", i, a, b)
		}
	}
	if got := interrupted.Config().Space; got != "pg16" {
		t.Fatalf("restored session space = %q", got)
	}
}

// TestSnapshotV2ForwardCompat pins forward compatibility for version 2
// (the pre-WAL whole-snapshot format): the committed v2 golden file
// must restore into the current session bitwise-equivalently — its next
// advice must match a reference session driven through the same
// (deterministic) history — and re-snapshot at the current version.
func TestSnapshotV2ForwardCompat(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "snapshot_v2.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != 2 {
		t.Fatalf("fixture version = %d, want the frozen v2 format", doc.Version)
	}
	s, err := Restore(data)
	if err != nil {
		t.Fatalf("restoring v2 snapshot: %v", err)
	}
	if s.Iter() != 3 {
		t.Fatalf("restored iter = %d, want 3", s.Iter())
	}

	// The fixture is the golden session (case5, seed 42, three
	// goldenOutcome intervals): rebuild it live and compare advice.
	ref, err := NewSession(Config{Space: "case5", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ref.Suggest(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := ref.Report(goldenOutcome(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Suggest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Suggest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v2-restored advice diverged from reference\nrestored:  %+v\nreference: %+v", got, want)
	}

	reSnap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(reSnap, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != SnapshotVersion {
		t.Fatalf("re-snapshot version = %d, want %d", doc.Version, SnapshotVersion)
	}
}

// TestRestoreRejectsGarbage covers the error paths of Restore.
func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore([]byte("{")); err == nil {
		t.Fatal("accepted truncated JSON")
	}
	if _, err := Restore([]byte(`{"version": 999, "kind": "tune.Session"}`)); err == nil {
		t.Fatal("accepted unknown version")
	}
	if _, err := Restore([]byte(`{"version": 1, "kind": "something.Else"}`)); err == nil {
		t.Fatal("accepted wrong document kind")
	}
	if _, err := Restore([]byte(`{"version": 1, "kind": "tune.Session", "events": [{"kind": "report"}]}`)); err == nil {
		t.Fatal("accepted report event without outcome")
	}
}
