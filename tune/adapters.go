package tune

import (
	"repro/internal/core"
	"repro/internal/knobs"
	"repro/internal/rollout"
	"repro/internal/whitebox"
)

// lastRecommender is implemented by adapters whose backend exposes the
// full decision path of its latest recommendation.
type lastRecommender interface {
	Last() *core.Recommendation
}

// coreTuner is implemented by adapters built on core.OnlineTune; it
// grants sessions access to the tuner's exportable state.
type coreTuner interface {
	Core() *core.OnlineTune
}

// stagedTuner is implemented by adapters whose backend runs the canary
// rollout and can consume a paired primary/shadow observation.
type stagedTuner interface {
	CanaryActive() bool
	FeedbackStaged(env Env, primary Result, shadowPerf float64, shadowFailed bool)
}

// OnlineTuner adapts core.OnlineTune (Algorithm 3) to the unified Tuner
// interface. It is the only place outside the core package's own tests
// that constructs the tuner.
type OnlineTuner struct {
	T        *core.OnlineTune
	lastUnit []float64
	name     string
}

// NewOnlineTuner builds the OnlineTune backend. initial is the initial
// safety-set configuration (raw values); the paper uses the DBA default.
func NewOnlineTuner(space *knobs.Space, ctxDim int, initial KnobConfig, seed int64, opts TunerOptions) *OnlineTuner {
	u := space.Encode(initial)
	return &OnlineTuner{
		T:        core.New(space, ctxDim, u, seed, opts),
		lastUnit: u,
	}
}

// NewOnlineTunerNamed is NewOnlineTuner with a custom display name, for
// experiments that run several OnlineTune variants side by side.
func NewOnlineTunerNamed(name string, space *knobs.Space, ctxDim int, initial KnobConfig, seed int64, opts TunerOptions) *OnlineTuner {
	a := NewOnlineTuner(space, ctxDim, initial, seed, opts)
	a.name = name
	return a
}

// Name implements Tuner.
func (a *OnlineTuner) Name() string {
	if a.name != "" {
		return a.name
	}
	return "OnlineTune"
}

// Propose implements Tuner.
func (a *OnlineTuner) Propose(env Env) KnobConfig {
	rec := a.T.Recommend(env.Ctx, whitebox.Env{HW: env.HW, Load: env.Snapshot, Metrics: env.Metrics}, env.Tau)
	a.lastUnit = rec.Unit
	return rec.Config
}

// Feedback implements Tuner. The context stored with the observation is
// env.Ctx — the context of the interval the measurement was taken in.
func (a *OnlineTuner) Feedback(env Env, cfg KnobConfig, res Result) {
	a.T.Observe(env.Iter, env.Ctx, a.lastUnit, res.Objective(env.OLAP), env.Tau, res.Failed)
}

// Last returns the decision path of the latest recommendation.
func (a *OnlineTuner) Last() *core.Recommendation { return a.T.LastRecommendation() }

// Core exposes the underlying tuner for state export.
func (a *OnlineTuner) Core() *core.OnlineTune { return a.T }

// CanaryActive reports whether a candidate is staged on the non-serving
// replica — the canary phase in canary mode, the tuning phase in
// bluegreen mode, and the revalidate phase in both (a chain-rollback
// target filling its paired probation window).
func (a *OnlineTuner) CanaryActive() bool {
	ph := a.T.RolloutPhase()
	return ph == rollout.PhaseCanary || ph == rollout.PhaseTuning || ph == rollout.PhaseRevalidate
}

// FeedbackStaged consumes one paired canary observation: the primary
// measured under the last-good configuration and the shadow under the
// staged candidate.
func (a *OnlineTuner) FeedbackStaged(env Env, primary Result, shadowPerf float64, shadowFailed bool) {
	a.T.ObservePair(env.Iter, env.Ctx, primary.Objective(env.OLAP), shadowPerf, env.Tau, primary.Failed, shadowFailed)
}

// Best returns the best configuration found so far across all cluster
// models and its measured performance (-Inf before any safe
// observation).
func (a *OnlineTuner) Best() (KnobConfig, float64) {
	u, perf := a.T.Best()
	return a.T.Space.Decode(u), perf
}

// StoppingTuner adapts core.StoppingTuner — OnlineTune with the
// stopping-and-triggering extension (§8) — to the unified Tuner
// interface.
type StoppingTuner struct {
	S        *core.StoppingTuner
	T        *core.OnlineTune
	lastUnit []float64
	name     string
}

// NewStoppingTuner builds the stopping backend: OnlineTune that pauses
// reconfiguration after patience consecutive intervals whose best
// Expected Improvement stays below eiTrigger·|τ|.
func NewStoppingTuner(space *knobs.Space, ctxDim int, initial KnobConfig, seed int64, opts TunerOptions, eiTrigger float64, patience int) *StoppingTuner {
	u := space.Encode(initial)
	base := core.New(space, ctxDim, u, seed, opts)
	return &StoppingTuner{
		S:        core.NewStoppingTuner(base, eiTrigger, patience),
		T:        base,
		lastUnit: u,
	}
}

// Name implements Tuner.
func (a *StoppingTuner) Name() string {
	if a.name != "" {
		return a.name
	}
	return "OnlineTune+Stopping"
}

// Propose implements Tuner.
func (a *StoppingTuner) Propose(env Env) KnobConfig {
	rec := a.S.Recommend(env.Ctx, whitebox.Env{HW: env.HW, Load: env.Snapshot, Metrics: env.Metrics}, env.Tau)
	a.lastUnit = rec.Unit
	return rec.Config
}

// Feedback implements Tuner.
func (a *StoppingTuner) Feedback(env Env, cfg KnobConfig, res Result) {
	a.S.Observe(env.Iter, env.Ctx, a.lastUnit, res.Objective(env.OLAP), env.Tau, res.Failed)
}

// Last returns the decision path of the latest recommendation.
func (a *StoppingTuner) Last() *core.Recommendation { return a.T.LastRecommendation() }

// Core exposes the underlying tuner for state export.
//
// StoppingTuner deliberately does NOT implement stagedTuner: its paused
// iterations hold the applied configuration without consulting the
// rollout controller, so the canary rollout is unsupported for this
// backend (the "stopping" registry factory rejects the combination).
func (a *StoppingTuner) Core() *core.OnlineTune { return a.T }

// Paused reports whether the backend is currently holding the applied
// configuration.
func (a *StoppingTuner) Paused() bool { return a.S.Paused() }
