package tune

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/dbsim"
	"repro/internal/knobs"
	"repro/internal/workload"
)

// driveSession runs a session for iters intervals against the simulated
// instance, returning the per-interval advice.
func driveSession(t *testing.T, s *Session, space *knobs.Space, gen workload.Generator, iters int, simSeed int64) []Advice {
	t.Helper()
	in := dbsim.New(space, simSeed)
	out := make([]Advice, 0, iters)
	for i := 0; i < iters; i++ {
		adv, err := s.Suggest(context.Background())
		if err != nil {
			t.Fatalf("iter %d: Suggest: %v", i, err)
		}
		out = append(out, adv)
		w := gen.At(i)
		res := in.Eval(adv.Config, w, dbsim.EvalOptions{})
		dba := in.DBAResult(w)
		if err := s.Report(Outcome{
			Workload:    WorkloadFromSnapshot(w),
			Stats:       in.OptimizerStats(w),
			Metrics:     res.Metrics,
			Performance: res.Objective(w.OLAP),
			Baseline:    dba.Objective(w.OLAP),
			Failed:      res.Failed,
		}); err != nil {
			t.Fatalf("iter %d: Report: %v", i, err)
		}
	}
	return out
}

func TestSessionSuggestReportRoundTrip(t *testing.T) {
	s, err := NewSession(Config{Space: "case5", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	advices := driveSession(t, s, knobs.CaseStudy5(), workload.NewYCSB(1), 60, 1)
	if s.Iter() != 60 {
		t.Fatalf("session at iter %d after 60 reports", s.Iter())
	}

	// The first advice precedes any observation: it must fall back to
	// the initial safe configuration.
	first := advices[0]
	if !first.Fallback || first.RegionKind != "init" {
		t.Fatalf("first advice should be the initial fallback, got %+v", first)
	}
	dba := knobs.CaseStudy5().DBADefault()
	for name, v := range first.Config {
		if math.Abs(dba[name]-v) > 1e-9 {
			t.Fatalf("first advice sets %s=%v, DBA default is %v", name, v, dba[name])
		}
	}

	// Later advice carries the safety provenance of a warm tuner.
	warm := advices[len(advices)-1]
	if warm.RegionKind == "" {
		t.Fatal("warm advice missing region kind")
	}
	// The black-box safety set stays empty while the GP is uncertain
	// and opens up once enough observations accumulate (~iteration 50
	// on this workload).
	sawSafetySet := false
	for _, a := range advices {
		if a.SafetySetSize > 0 {
			sawSafetySet = true
		}
	}
	if !sawSafetySet {
		t.Fatal("no advice ever reported a non-empty safety set")
	}

	// The session learned a best configuration.
	if _, perf, ok := s.Best(); !ok || perf <= 0 {
		t.Fatalf("Best() = %v, %v after 60 safe-threshold intervals", perf, ok)
	}

	// The underlying repository recorded every observation.
	if obs := s.stateLocked().Observations; obs != 60 {
		t.Fatalf("repository holds %d observations", obs)
	}
}

func TestSessionComputesEI(t *testing.T) {
	s, err := NewSession(Config{Space: "case5", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	advices := driveSession(t, s, knobs.CaseStudy5(), workload.NewYCSB(3), 20, 3)
	sawEI := false
	for _, a := range advices {
		if a.HasEI {
			sawEI = true
			if math.IsNaN(a.EI) || math.IsInf(a.EI, 0) || a.EI < 0 {
				t.Fatalf("bad EI %v", a.EI)
			}
		}
	}
	if !sawEI {
		t.Fatal("no advice carried an Expected Improvement")
	}
}

func TestSessionBaselineBackend(t *testing.T) {
	s, err := NewSession(Config{Space: "case5", Backend: "bo", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	advices := driveSession(t, s, knobs.CaseStudy5(), workload.NewYCSB(2), 10, 2)
	if len(advices) != 10 {
		t.Fatal("missing advice")
	}
	if advices[0].Backend != "bo" {
		t.Fatalf("backend label %q", advices[0].Backend)
	}
	if _, _, ok := s.Best(); ok {
		t.Fatal("baseline backends do not track an incumbent")
	}
}

func TestSessionStoppingBackendPauses(t *testing.T) {
	s, err := NewSession(Config{Space: "case5", Backend: "stopping", Seed: 4,
		Stopping: &StoppingConfig{EITrigger: 0.5, Patience: 2}})
	if err != nil {
		t.Fatal(err)
	}
	advices := driveSession(t, s, knobs.CaseStudy5(), workload.NewYCSB(4), 40, 4)
	paused := 0
	for _, a := range advices {
		if a.Paused {
			paused++
		}
	}
	if paused == 0 {
		t.Fatal("aggressive stopping config never paused in 40 stable intervals")
	}
}

func TestOpenRejectsUnknownNames(t *testing.T) {
	if _, err := Open("nope", Config{}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := NewSession(Config{Space: "nope"}); err == nil {
		t.Fatal("unknown space accepted")
	}
	if _, err := NewSession(Config{Initial: KnobConfig{"not_a_knob": 1}}); err == nil {
		t.Fatal("unknown initial knob accepted")
	}
}

func TestBackendsRegistryComplete(t *testing.T) {
	want := []string{"bo", "dba", "ddpg", "mysql", "mysqltuner", "onlinetune", "qtune", "restune", "stopping"}
	got := Backends()
	for _, name := range want {
		found := false
		for _, g := range got {
			if g == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("backend %q not registered (have %v)", name, got)
		}
		tn, err := Open(name, Config{Space: "case5", Seed: 1})
		if err != nil {
			t.Fatalf("Open(%q): %v", name, err)
		}
		if tn.Name() == "" {
			t.Fatalf("backend %q has empty display name", name)
		}
	}
}

// TestSessionDetachedFromCallerBuffers pins the no-aliasing contract:
// mutating a reported Outcome's statement buffer or a returned Advice
// after the call must not corrupt the session's event log or its record
// of the last suggestion.
func TestSessionDetachedFromCallerBuffers(t *testing.T) {
	mkSession := func() *Session {
		s, err := NewSession(Config{Space: "case5", Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	outcomeWith := func(sql string) Outcome {
		return Outcome{
			Workload:    Workload{Statements: []Statement{{SQL: sql, Weight: 1}}, Unlimited: true},
			Performance: 21000, Baseline: 20000,
		}
	}

	// Clean run: distinct outcomes, untouched advice.
	clean := mkSession()
	if _, err := clean.Suggest(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := clean.Report(outcomeWith("SELECT a FROM t WHERE b = 1")); err != nil {
		t.Fatal(err)
	}
	if err := clean.Report(outcomeWith("SELECT c FROM u WHERE d = 2")); err != nil {
		t.Fatal(err)
	}
	wantSnap, err := clean.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Hostile run: one statement buffer reused and overwritten between
	// reports, and the returned advice mutated after Suggest.
	hostile := mkSession()
	adv, err := hostile.Suggest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for k := range adv.Config {
		adv.Config[k] = -1
	}
	for i := range adv.Unit {
		adv.Unit[i] = -1
	}
	buf := []Statement{{SQL: "SELECT a FROM t WHERE b = 1", Weight: 1}}
	o := Outcome{Workload: Workload{Statements: buf, Unlimited: true}, Performance: 21000, Baseline: 20000}
	if err := hostile.Report(o); err != nil {
		t.Fatal(err)
	}
	buf[0].SQL = "SELECT c FROM u WHERE d = 2" // reuse the buffer in place
	o2 := Outcome{Workload: Workload{Statements: buf, Unlimited: true}, Performance: 21000, Baseline: 20000}
	if err := hostile.Report(o2); err != nil {
		t.Fatal(err)
	}
	gotSnap, err := hostile.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantSnap, gotSnap) {
		t.Fatal("caller-side mutation leaked into the session snapshot")
	}
}

// TestOnlineTunerAdapterRoundTrip is the adapter coverage formerly in
// internal/baselines: the unified-interface wrapper drives core
// correctly and records every observation.
func TestOnlineTunerAdapterRoundTrip(t *testing.T) {
	space := knobs.CaseStudy5()
	a := NewOnlineTuner(space, 4, space.DBADefault(), 1, DefaultTunerOptions())
	if a.Name() != "OnlineTune" {
		t.Fatal("name wrong")
	}
	in := dbsim.New(space, 3)
	gen := workload.NewYCSB(1)
	var last Metrics
	ctx := make([]float64, 4)
	for i := 0; i < 30; i++ {
		w := gen.At(i)
		dba := in.DBAResult(w)
		ctx[0], ctx[1], ctx[2], ctx[3] = w.ReadFrac, w.ScanFrac, w.Skew, w.DataGB/100
		env := Env{Iter: i, Snapshot: w, Ctx: ctx, Metrics: last, Tau: dba.Objective(w.OLAP), OLAP: w.OLAP, HW: in.HW}
		cfg := a.Propose(env)
		res := in.Eval(cfg, w, dbsim.EvalOptions{})
		a.Feedback(env, cfg, res)
		last = res.Metrics
	}
	if a.T.Repo.Len() != 30 {
		t.Fatalf("repository holds %d observations", a.T.Repo.Len())
	}
	if rec := a.Last(); rec == nil {
		t.Fatal("no last recommendation")
	}
}
