package tune

import (
	"context"
	"math"
	"sync"

	"repro/internal/featurize"
	"repro/internal/knobs"
	"repro/internal/rollout"
	"repro/internal/workload"
)

// Statement is one observed SQL statement with its relative frequency
// within the interval (a zero weight counts as 1).
type Statement struct {
	SQL    string  `json:"sql"`
	Weight float64 `json:"weight,omitempty"`
}

// Workload describes the raw workload observed during one tuning
// interval: the sampled statements plus the operational characteristics
// the simulator's white-box rules reason about. Only Statements and
// ArrivalRate/Unlimited affect featurization; the remaining fields are
// optional hints.
type Workload struct {
	Statements []Statement `json:"statements"`
	// ArrivalRate is the offered load in queries/second; Unlimited means
	// a closed loop saturating the instance.
	ArrivalRate float64 `json:"arrival_rate,omitempty"`
	Unlimited   bool    `json:"unlimited,omitempty"`
	// OLAP marks analytic intervals (objective = −execution time).
	OLAP bool `json:"olap,omitempty"`

	// Optional operational characteristics in [0,1] unless noted.
	ReadFrac       float64 `json:"read_frac,omitempty"`
	ScanFrac       float64 `json:"scan_frac,omitempty"`
	SortFrac       float64 `json:"sort_frac,omitempty"`
	TmpFrac        float64 `json:"tmp_frac,omitempty"`
	JoinFrac       float64 `json:"join_frac,omitempty"`
	Skew           float64 `json:"skew,omitempty"`
	WorkingSetFrac float64 `json:"working_set_frac,omitempty"`
	PointFrac      float64 `json:"point_frac,omitempty"`
	TxnOps         float64 `json:"txn_ops,omitempty"`
	DataGB         float64 `json:"data_gb,omitempty"`
}

// WorkloadFromSnapshot converts a generator snapshot into the public
// Workload form (the bridge drivers use when they already run the
// internal workload generators).
func WorkloadFromSnapshot(w workload.Snapshot) Workload {
	out := Workload{
		ArrivalRate: w.ArrivalRate, Unlimited: w.Unlimited, OLAP: w.OLAP,
		ReadFrac: w.ReadFrac, ScanFrac: w.ScanFrac, SortFrac: w.SortFrac,
		TmpFrac: w.TmpFrac, JoinFrac: w.JoinFrac, Skew: w.Skew,
		WorkingSetFrac: w.WorkingSetFrac, PointFrac: w.PointFrac,
		TxnOps: w.TxnOps, DataGB: w.DataGB,
	}
	for _, q := range w.Queries {
		out.Statements = append(out.Statements, Statement{SQL: q.SQL, Weight: q.Weight})
	}
	return out
}

// snapshot converts to the internal form consumed by the featurizer and
// the white-box rules.
func (w Workload) snapshot(iter int) workload.Snapshot {
	s := workload.Snapshot{
		Iter: iter, Bench: "session",
		ArrivalRate: w.ArrivalRate, Unlimited: w.Unlimited, OLAP: w.OLAP,
		ReadFrac: w.ReadFrac, ScanFrac: w.ScanFrac, SortFrac: w.SortFrac,
		TmpFrac: w.TmpFrac, JoinFrac: w.JoinFrac, Skew: w.Skew,
		WorkingSetFrac: w.WorkingSetFrac, PointFrac: w.PointFrac,
		TxnOps: w.TxnOps, DataGB: w.DataGB,
	}
	for _, st := range w.Statements {
		wgt := st.Weight
		if wgt == 0 {
			wgt = 1
		}
		s.Queries = append(s.Queries, workload.Query{SQL: st.SQL, Weight: wgt})
	}
	return s
}

// Role identifies a rollout replica target in the wire API: RolePrimary
// is the serving replica, RoleStaged the replica evaluating a candidate
// (the canary shadow, or the bluegreen green replica while tuning).
type Role string

// Replica roles used as keys in Advice.Targets and
// Outcome.Measurements.
const (
	RolePrimary Role = "primary"
	RoleStaged  Role = "staged"
)

// ConfigRef is one replica's configuration assignment: the raw knob
// values plus the unit-hypercube encoding.
type ConfigRef struct {
	Config KnobConfig `json:"config"`
	Unit   []float64  `json:"unit"`
}

// ReplicaPerf is one replica's measurement for an interval.
type ReplicaPerf struct {
	// Performance is the objective the replica achieved.
	Performance float64 `json:"performance"`
	// Failed marks a replica failure (hang, crash, OOM).
	Failed bool `json:"failed,omitempty"`
}

// ShadowOutcome is the deprecated name for ReplicaPerf, kept so
// pre-role-keyed callers (and the `shadow` wire field) keep working.
//
// Deprecated: use Outcome.Measurements[RoleStaged].
type ShadowOutcome = ReplicaPerf

// Outcome reports the measured result of running the last suggested
// configuration (or the initial configuration before any suggestion)
// for one interval.
type Outcome struct {
	// Workload is the raw workload observed during the interval.
	Workload Workload `json:"workload"`
	// Stats are the optimizer's per-interval aggregate estimates.
	Stats OptimizerStats `json:"optimizer_stats"`
	// Metrics are the internal DBMS counters observed in the interval.
	Metrics Metrics `json:"metrics"`
	// Performance is the objective achieved: throughput for OLTP
	// intervals, negative execution time for OLAP intervals.
	Performance float64 `json:"performance"`
	// Baseline is the default (untuned) configuration's performance for
	// this interval — the safety threshold τ.
	Baseline float64 `json:"baseline"`
	// P99LatencyMs optionally reports tail latency.
	P99LatencyMs float64 `json:"p99_latency_ms,omitempty"`
	// Failed marks an instance failure (hang, crash, OOM).
	Failed bool `json:"failed,omitempty"`
	// Measurements reports per-replica measurements keyed by role. A
	// RoleStaged entry carries the staged replica's measurement of the
	// candidate configuration — required for the comparison window to
	// advance while the session's rollout is in the canary/tuning phase,
	// ignored otherwise (a report without it still teaches the model the
	// primary's measurement, but defers the promotion decision). A
	// RolePrimary entry, when present, overrides the flat
	// Performance/Failed fields.
	Measurements map[Role]ReplicaPerf `json:"measurements,omitempty"`
	// Shadow is the deprecated flat form of Measurements[RoleStaged],
	// still accepted on input. When both are present the role-keyed form
	// wins.
	//
	// Deprecated: use Measurements[RoleStaged].
	Shadow *ShadowOutcome `json:"shadow,omitempty"`
}

// stagedMeasurement resolves the staged replica's measurement: the
// role-keyed form first, the deprecated Shadow alias second, nil when
// neither was reported.
func (o Outcome) stagedMeasurement() *ReplicaPerf {
	if m, ok := o.Measurements[RoleStaged]; ok {
		return &m
	}
	return o.Shadow
}

// clone deep-copies the outcome's reference fields, so a logged outcome
// is immune to callers reusing statement buffers across intervals.
func (o Outcome) clone() Outcome {
	oc := o
	oc.Workload.Statements = append([]Statement(nil), o.Workload.Statements...)
	if o.Shadow != nil {
		sh := *o.Shadow
		oc.Shadow = &sh
	}
	if o.Measurements != nil {
		oc.Measurements = make(map[Role]ReplicaPerf, len(o.Measurements))
		for r, m := range o.Measurements {
			oc.Measurements[r] = m
		}
	}
	return oc
}

// result reconstructs the raw interval result backends consume.
func (o Outcome) result() Result {
	r := Result{Failed: o.Failed, Metrics: o.Metrics, P99LatencyMs: o.P99LatencyMs}
	if o.Workload.OLAP {
		r.ExecTimeSec = -o.Performance
	} else {
		r.Throughput = o.Performance
	}
	return r
}

// Advice is one recommended configuration together with the decision
// path that produced it.
type Advice struct {
	// Iter is the tuning interval the advice targets.
	Iter int `json:"iter"`
	// Backend is the registry name of the tuner that produced it.
	Backend string `json:"backend"`
	// Config is the recommended configuration (raw knob values).
	Config KnobConfig `json:"config"`
	// Unit is the same configuration in unit-hypercube encoding.
	Unit []float64 `json:"unit"`

	// Safety provenance (OnlineTune backends; zero for baselines).

	// Boundary reports that ε-greedy exploration picked the safe
	// boundary point rather than the UCB maximizer.
	Boundary bool `json:"boundary,omitempty"`
	// Fallback reports that the safe set was empty (or the model cold)
	// and the tuner stayed at the best known configuration.
	Fallback bool `json:"fallback,omitempty"`
	// SafetySetSize is the number of candidates assessed safe.
	SafetySetSize int `json:"safety_set_size,omitempty"`
	// ModelIndex is the cluster model that produced the advice.
	ModelIndex int `json:"model_index,omitempty"`
	// RegionKind is the subspace type used ("hypercube", "line",
	// "global", "probe", "init", "paused").
	RegionKind string `json:"region_kind,omitempty"`
	// WhiteBoxVetoes counts candidates the rule engine rejected.
	WhiteBoxVetoes int `json:"white_box_vetoes,omitempty"`
	// IgnoredRule names the white-box rule bypassed by conflict
	// relaxation, if any.
	IgnoredRule string `json:"ignored_rule,omitempty"`
	// Paused reports that the stopping backend is holding the applied
	// configuration.
	Paused bool `json:"paused,omitempty"`
	// RolloutPhase is the rollout state this advice was routed through:
	// empty (rollout disabled — Config goes straight to the primary),
	// "steady" (no candidate in flight), "canary"/"tuning" (Config/Unit
	// carry the primary's last-good configuration while
	// Targets[RoleStaged] carries the candidate to run on the staged
	// replica; report the paired measurement via
	// Outcome.Measurements[RoleStaged]), "switchover" (a bluegreen
	// promotion is swapping the replica roles; the advice holds the
	// newly promoted configuration), or "revalidate" (a previous-good
	// chain target is on probation after a drift rollback).
	RolloutPhase string `json:"rollout_phase,omitempty"`
	// Targets is the per-replica assignment keyed by role: RolePrimary
	// mirrors Config/Unit, RoleStaged (canary/tuning phase only) is the
	// candidate to evaluate on the staged replica.
	Targets map[Role]ConfigRef `json:"targets,omitempty"`
	// ShadowConfig/ShadowUnit are the deprecated flat form of
	// Targets[RoleStaged], still emitted alongside it.
	//
	// Deprecated: use Targets[RoleStaged].
	ShadowConfig KnobConfig `json:"shadow_config,omitempty"`
	ShadowUnit   []float64  `json:"shadow_unit,omitempty"`
	// EI is the model's Expected Improvement of this configuration over
	// the previously applied one (meaningful when HasEI).
	EI    float64 `json:"ei,omitempty"`
	HasEI bool    `json:"has_ei,omitempty"`
}

// Session is a durable tuning session for one database. It wraps a
// backend Tuner with internal context featurization, so callers hand it
// raw observations and receive configuration advice. Safe for
// concurrent use; every operation is appended to an event log that
// Snapshot serializes, which is how a restored session reproduces the
// exact tuner state (see Restore).
type Session struct {
	mu    sync.Mutex
	cfg   Config
	space *knobs.Space
	feat  *featurize.Featurizer
	tuner Tuner
	hw    Hardware

	// know is the session's fleet-knowledge adapter (nil unless
	// cfg.Knowledge); it appends query events to s.events from inside
	// tuner calls, which always run under mu.
	know *knowAdapter

	iter     int
	lastSnap workload.Snapshot
	lastCtx  []float64
	lastMet  Metrics
	lastTau  float64
	lastOLAP bool
	lastUnit []float64
	lastCfg  KnobConfig

	events []event
}

// NewSession creates a session from a declarative Config.
func NewSession(cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Rollout.validate(); err != nil {
		return nil, err
	}
	if cfg.Initial != nil {
		cfg.Initial = cfg.Initial.Clone() // detach from the caller's map
	}
	space, err := cfg.space()
	if err != nil {
		return nil, err
	}
	initial, err := cfg.initial(space)
	if err != nil {
		return nil, err
	}
	if cfg.Knowledge {
		// Built before Open so cfg.options() can hand it to the tuner; the
		// engine+space pair is the fleet store's transfer-compatibility key.
		cfg.know = &knowAdapter{
			fleet:  cfg.fleet,
			engine: string(space.Engine.OrMySQL()),
			space:  cfg.Space,
		}
	}
	tuner, err := Open(cfg.Backend, cfg)
	if err != nil {
		return nil, err
	}
	s := &Session{
		cfg:      cfg,
		space:    space,
		feat:     featurize.NewPretrained(cfg.Seed),
		tuner:    tuner,
		hw:       cfg.hardware(),
		know:     cfg.know,
		lastCfg:  initial,
		lastUnit: space.Encode(initial),
	}
	if s.know != nil {
		s.know.sess = s
	}
	s.lastCtx = make([]float64, s.feat.Dim())
	return s, nil
}

// Config returns the session's (defaulted) configuration.
func (s *Session) Config() Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}

// Iter returns the number of outcomes reported so far.
func (s *Session) Iter() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.iter
}

// EventCount returns the number of logged events (suggests, reports and
// rollout decisions) — the length of the log a Snapshot would carry.
func (s *Session) EventCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// eventsSince returns a copy of the logged events from index n on — the
// not-yet-persisted suffix the Manager appends to the session's
// write-ahead log after each operation.
func (s *Session) eventsSince(n int) []event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 || n >= len(s.events) {
		return nil
	}
	return append([]event(nil), s.events[n:]...)
}

// Suggest recommends a configuration for the next interval, based on
// the most recently reported workload (before any report: the initial
// safe configuration).
func (s *Session) Suggest(ctx context.Context) (Advice, error) {
	if err := ctx.Err(); err != nil {
		return Advice{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, event{Kind: eventSuggest})
	return s.suggestLocked(), nil
}

// suggestLocked runs one Propose and assembles the Advice. Also used by
// Restore's replay, so it must be a pure function of tuner+session
// state.
func (s *Session) suggestLocked() Advice {
	env := s.envLocked()
	prevUnit := s.lastUnit
	cfg := s.tuner.Propose(env)
	adv := Advice{
		Iter:    s.iter,
		Backend: s.cfg.Backend,
		Config:  cfg.Clone(),
		Unit:    s.space.Encode(cfg),
	}
	if lr, ok := s.tuner.(lastRecommender); ok {
		if rec := lr.Last(); rec != nil {
			adv.Unit = append([]float64(nil), rec.Unit...)
			adv.Boundary = rec.Boundary
			adv.Fallback = rec.Fallback
			adv.SafetySetSize = rec.SafetySetSize
			adv.ModelIndex = rec.ModelIndex
			adv.RegionKind = rec.RegionKind
			adv.WhiteBoxVetoes = rec.WhiteBoxVetoes
			if rec.IgnoredRule != nil {
				adv.IgnoredRule = rec.IgnoredRule.Name
			}
			adv.RolloutPhase = rec.RolloutPhase
			if rec.ShadowUnit != nil {
				adv.ShadowUnit = append([]float64(nil), rec.ShadowUnit...)
				adv.ShadowConfig = rec.ShadowConfig.Clone()
			}
			if adv.RolloutPhase != "" {
				// Role-keyed targets supersede the flat shadow fields; both
				// forms are emitted during the deprecation window.
				adv.Targets = map[Role]ConfigRef{
					RolePrimary: {Config: adv.Config.Clone(), Unit: append([]float64(nil), adv.Unit...)},
				}
				if adv.ShadowUnit != nil {
					adv.Targets[RoleStaged] = ConfigRef{Config: adv.ShadowConfig.Clone(), Unit: append([]float64(nil), adv.ShadowUnit...)}
				}
			}
		}
	}
	if st, ok := s.tuner.(*StoppingTuner); ok {
		adv.Paused = st.Paused()
	}
	if ct, ok := s.tuner.(coreTuner); ok {
		if ei, ok := ct.Core().ExpectedImprovementAt(env.Ctx, adv.Unit, prevUnit); ok && !math.IsInf(ei, 0) && !math.IsNaN(ei) {
			adv.EI, adv.HasEI = ei, true
		}
	}
	// Store private copies: the returned Advice is the caller's to
	// mutate, and must not alias the session's record of what was
	// suggested.
	s.lastUnit = append([]float64(nil), adv.Unit...)
	s.lastCfg = adv.Config.Clone()
	return adv
}

// Report feeds the measured outcome of the last suggested configuration
// back into the session: the raw workload is featurized into the
// interval's context, the backend observes the measurement, and the
// context becomes the basis of the next Suggest.
func (s *Session) Report(o Outcome) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	oc := o.clone()
	s.events = append(s.events, event{Kind: eventReport, Outcome: &oc})
	s.reportLocked(oc)
	return nil
}

// reportLocked applies one outcome. Also used by Restore's replay —
// any promote/rollback decision the outcome triggers is appended to the
// event log here, so a replayed log regenerates the identical decision
// sequence for Restore to verify.
func (s *Session) reportLocked(o Outcome) {
	// Normalize the role-keyed wire form onto the flat fields: a
	// RolePrimary measurement overrides Performance/Failed, and the
	// staged measurement resolves through either form. Replay runs the
	// same normalization, so logged outcomes replay identically
	// whichever form the client used.
	if m, ok := o.Measurements[RolePrimary]; ok {
		o.Performance, o.Failed = m.Performance, m.Failed
	}
	snap := o.Workload.snapshot(s.iter)
	ctx := s.feat.ContextInto(nil, snap, o.Stats)
	env := Env{
		Iter: s.iter, Snapshot: snap, Ctx: ctx, Metrics: o.Metrics,
		Tau: o.Baseline, OLAP: snap.OLAP, HW: s.hw,
	}
	staged := false
	if sh := o.stagedMeasurement(); sh != nil {
		if st, ok := s.tuner.(stagedTuner); ok && st.CanaryActive() {
			st.FeedbackStaged(env, o.result(), sh.Performance, sh.Failed)
			staged = true
		}
	}
	if !staged {
		s.tuner.Feedback(env, s.lastCfg, o.result())
	}
	s.recordRolloutEventLocked()
	s.lastSnap = snap
	s.lastCtx = ctx
	s.lastMet = o.Metrics
	s.lastTau = o.Baseline
	s.lastOLAP = snap.OLAP
	s.iter++
}

// envLocked assembles the per-interval environment from the latest
// reported observation.
func (s *Session) envLocked() Env {
	return Env{
		Iter: s.iter, Snapshot: s.lastSnap, Ctx: s.lastCtx,
		Metrics: s.lastMet, Tau: s.lastTau, OLAP: s.lastOLAP, HW: s.hw,
	}
}

// recordRolloutEventLocked appends the rollout decision (promote,
// rollback, switchover, or chain rollback) made by the report currently
// being applied (identified by its iteration) to the session's event
// log.
func (s *Session) recordRolloutEventLocked() {
	ct, ok := s.tuner.(coreTuner)
	if !ok {
		return
	}
	st := ct.Core().RolloutStatus()
	if st == nil || st.LastEvent == nil || st.LastEvent.Iter != s.iter {
		return
	}
	ev := *st.LastEvent
	s.events = append(s.events, event{Kind: ev.Kind, Rollout: &ev})
}

// Rollout returns the session's canary rollout status. Sessions whose
// rollout is disabled (or whose backend has none) report PhaseDirect:
// recommendations apply straight to the primary.
func (s *Session) Rollout() RolloutStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rolloutLocked()
}

func (s *Session) rolloutLocked() RolloutStatus {
	if ct, ok := s.tuner.(coreTuner); ok {
		if st := ct.Core().RolloutStatus(); st != nil {
			return *st
		}
	}
	return RolloutStatus{Phase: rollout.PhaseDirect}
}

// RolloutPhase returns just the session's rollout phase ("direct",
// "steady", "canary", "tuning", "switchover", or "revalidate") without
// copying the controller state — for session listings polled per
// request.
func (s *Session) RolloutPhase() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ct, ok := s.tuner.(coreTuner); ok {
		return string(ct.Core().RolloutPhase())
	}
	return RolloutDirect
}

// Best returns the best configuration the session has measured and its
// performance; ok is false for backends that do not track an incumbent
// or before any safe observation.
func (s *Session) Best() (KnobConfig, float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ct, ok := s.tuner.(coreTuner)
	if !ok {
		return nil, 0, false
	}
	u, perf := ct.Core().Best()
	if math.IsInf(perf, -1) {
		return nil, 0, false
	}
	return s.space.Decode(u), perf, true
}

// Backend returns the session's tuner name (display form).
func (s *Session) Backend() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tuner.Name()
}
