package tune

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/rollout"
)

// SnapshotVersion is the version of the session snapshot JSON schema.
// The schema is append-only within a version: fields may be added,
// never renamed or repurposed. Version 2 added the canary rollout:
// promote/rollback events in the log, Outcome.Shadow payloads, and the
// rollout state summary. Version 3 added the top-level rollout_phase
// header field (emitted before the event log so the Manager's boot scan
// can summarize a session by reading only the head of its base
// snapshot) and is the format WAL compaction writes as a session's base
// snapshot. Version 4 added fleet-knowledge events: each query's advice
// is logged so replay reproduces the session without the fleet store
// (which other sessions keep mutating). Version 5 added the
// mode-selectable rollout (canary | bluegreen): switchover and
// chain-rollback events join the log, Outcome carries role-keyed
// Measurements, and the rollout state summary gains mode, replicas,
// chain depth and cost metrics. Version 1–4 snapshots restore
// unchanged, with the rollout defaulted to direct apply for v1 and to
// canary mode for rollout-enabled v2–v4 sessions.
const SnapshotVersion = 5

// snapshotKind tags the document so unrelated JSON is rejected early.
const snapshotKind = "tune.Session"

// Event kinds in the session log. Rollout decision events
// (rollout.EventPromote / EventRollback / EventSwitchover /
// EventChainRollback) record rollout decisions; they are derived — a
// replayed report regenerates them — and serve as integrity checks
// during Restore.
const (
	eventSuggest = "suggest"
	eventReport  = "report"
	// eventKnowledge records one fleet-knowledge query and the advice it
	// returned. Derived like promote/rollback — a replayed suggest
	// regenerates it — but it also CARRIES state: replay feeds the logged
	// advice back to the tuner instead of re-querying the live store.
	eventKnowledge = "knowledge"
)

// event is one logged session operation. The tuner's evolution is a
// deterministic function of its Config and the ordered event log, so
// the log IS the durable state: Restore replays it through a freshly
// built session and arrives at a bitwise-identical tuner (GP Cholesky
// factors, RNG stream, cluster assignments, rule-relaxation counters,
// rollout state and all) — a fidelity no field-by-field serialization
// of float state could guarantee as cheaply.
type event struct {
	Kind    string   `json:"kind"`
	Outcome *Outcome `json:"outcome,omitempty"`
	// Rollout carries a promote/rollback decision's provenance.
	Rollout *RolloutEvent `json:"rollout,omitempty"`
	// Knowledge carries a fleet-knowledge query's result.
	Knowledge *knowledgeEvent `json:"knowledge,omitempty"`
}

// sessionState is the derived, human-inspectable state summary embedded
// in a snapshot: the per-cluster GP observations, the cluster
// assignment of every historical observation, each model's safe-set
// memory, and the featurizer's vocabulary. Restore uses it as an
// integrity check on the replayed session.
type sessionState struct {
	// Observations is the total number of repository observations.
	Observations int `json:"observations"`
	// ClusterLabels is the cluster assignment per observation.
	ClusterLabels []int `json:"cluster_labels,omitempty"`
	// Models holds each cluster model's GP observations, incumbent and
	// evaluated safe-set keys.
	Models []core.ModelSnapshot `json:"models,omitempty"`
	// Vocabulary is the featurizer's admitted token list in id order.
	Vocabulary []string `json:"vocabulary,omitempty"`
	// Rollout summarizes the canary rollout controller (nil when the
	// session applies recommendations directly).
	Rollout *RolloutStatus `json:"rollout,omitempty"`
}

// snapshotFile is the versioned JSON document Snapshot produces. Field
// order matters: everything the Manager's boot scan needs (config,
// iter, rollout_phase) is marshaled BEFORE the event log, so peeking a
// base snapshot's header never reads past the head of the file.
type snapshotFile struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	Config  Config `json:"config"`
	Iter    int    `json:"iter"`
	// RolloutPhase duplicates State.Rollout.Phase in the header (v3+).
	RolloutPhase string        `json:"rollout_phase,omitempty"`
	Events       []event       `json:"events"`
	State        *sessionState `json:"state,omitempty"`
}

// Snapshot serializes the session as versioned JSON: its configuration,
// the full event log, and a derived state summary (GP observations,
// cluster assignments, safe sets, featurizer vocabulary). The bytes are
// self-contained — Restore rebuilds an equivalent session from them
// alone.
func (s *Session) Snapshot() ([]byte, error) {
	s.mu.Lock()
	f := snapshotFile{
		Version:      SnapshotVersion,
		Kind:         snapshotKind,
		Config:       s.cfg,
		Iter:         s.iter,
		RolloutPhase: string(s.rolloutLocked().Phase),
		Events:       s.events,
		State:        s.stateLocked(),
	}
	s.mu.Unlock()
	// Marshal off-lock (the log can be large, and encoding it must not
	// stall concurrent Suggest/Report): every reference f carries is
	// safe to read unlocked — State and RolloutPhase are deep copies
	// built under the lock, Config is immutable after NewSession, and
	// Events is a fixed-length prefix of an append-only log whose
	// entries are never mutated after being appended.
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// stateLocked exports the derived state summary.
func (s *Session) stateLocked() *sessionState {
	st := &sessionState{Vocabulary: s.feat.Vocabulary()}
	if ct, ok := s.tuner.(coreTuner); ok {
		t := ct.Core()
		st.Observations = t.Repo.Len()
		st.ClusterLabels = t.Labels()
		for i := 0; i < t.NumModels(); i++ {
			st.Models = append(st.Models, t.ModelSnapshotAt(i))
		}
		st.Rollout = t.RolloutStatus()
	}
	return st
}

// Restore rebuilds a session from Snapshot bytes by replaying its event
// log through a freshly constructed session with the same Config. Every
// source of randomness is seeded, so the restored session's subsequent
// recommendations are bitwise-identical to those an uninterrupted
// session would have produced. The embedded state summary is verified
// against the replayed tuner.
func Restore(data []byte) (*Session, error) {
	s, _, err := restoreParts(data, nil)
	return s, err
}

// parseSnapshot validates the version envelope of a snapshot document.
func parseSnapshot(data []byte) (snapshotFile, error) {
	var f snapshotFile
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("tune: parsing snapshot: %w", err)
	}
	if f.Kind != "" && f.Kind != snapshotKind {
		return f, fmt.Errorf("tune: snapshot kind %q is not %q", f.Kind, snapshotKind)
	}
	if f.Version < 1 || f.Version > SnapshotVersion {
		return f, fmt.Errorf("tune: snapshot version %d not supported (want 1..%d)", f.Version, SnapshotVersion)
	}
	return f, nil
}

// restoreParts is snapshot+tail recovery: it rebuilds a session from a
// base snapshot document plus the tail of events the Manager's
// write-ahead log accumulated since that base was compacted. The base's
// embedded state summary is verified at the base boundary, then the
// tail replays through the same verification loop. It returns the
// restored session and the number of events the base contributed (the
// tail's starting index in the combined log).
func restoreParts(base []byte, tail []event) (*Session, int, error) {
	return restorePartsWith(base, tail, nil)
}

// restorePartsWith is restoreParts with the Manager's fleet knowledge
// store injected, so a hydrated session resumes contributing to (and
// querying) the live store once replay finishes. Replay itself never
// touches the store — it consumes the logged advice.
func restorePartsWith(base []byte, tail []event, fleet *fleetKnowledge) (*Session, int, error) {
	f, err := parseSnapshot(base)
	if err != nil {
		return nil, 0, err
	}
	f.Config.fleet = fleet
	s, err := restoreFile(f, tail)
	return s, len(f.Events), err
}

// restoreFile replays a parsed base document plus a tail of
// WAL-recovered events (the Manager's hydration path parses the base
// itself so it can filter the tail by the base's event count first).
func restoreFile(f snapshotFile, tail []event) (*Session, error) {
	s, err := NewSession(f.Config)
	if err != nil {
		return nil, err
	}
	if s.know != nil {
		// Feed the logged advice sequence to the adapter: replayed queries
		// pop it in order, so the tuner sees exactly what it saw live.
		s.know.beginReplay(knowledgeQueue(f.Events, tail))
		defer s.know.endReplay()
	}
	// Rollout decisions are derived from the replayed reports — during
	// replay s.events accumulates exactly the regenerated promote/
	// rollback events, which must line up one-to-one with the logged
	// ones (verified is the cursor into the regenerated sequence).
	verified := 0
	if err := s.replayEvents(f.Events, &verified); err != nil {
		return nil, err
	}
	// The base's iter and state summary describe the session at the
	// base boundary — check them before replaying the tail on top.
	if s.iter != f.Iter {
		return nil, fmt.Errorf("tune: replay reached iter %d, snapshot recorded %d", s.iter, f.Iter)
	}
	if err := s.verifyState(f.State); err != nil {
		return nil, err
	}
	if err := s.replayEvents(tail, &verified); err != nil {
		return nil, err
	}
	if verified != len(s.events) {
		return nil, fmt.Errorf("tune: replay produced %d rollout decisions, snapshot logged %d", len(s.events), verified)
	}
	s.events = append(append([]event(nil), f.Events...), tail...)
	return s, nil
}

// replayEvents replays one stretch of logged events into s, advancing
// the rollout-decision verification cursor.
func (s *Session) replayEvents(events []event, verified *int) error {
	for i, ev := range events {
		switch ev.Kind {
		case eventSuggest:
			s.suggestLocked()
		case eventReport:
			if ev.Outcome == nil {
				return fmt.Errorf("tune: snapshot event %d: report without outcome", i)
			}
			s.reportLocked(*ev.Outcome)
		case rollout.EventPromote, rollout.EventRollback, rollout.EventSwitchover, rollout.EventChainRollback:
			if *verified >= len(s.events) || s.events[*verified].Kind != ev.Kind {
				return fmt.Errorf("tune: snapshot event %d: replay did not reproduce the logged %s decision", i, ev.Kind)
			}
			if got := s.events[*verified].Rollout; got != nil && ev.Rollout != nil && got.Iter != ev.Rollout.Iter {
				return fmt.Errorf("tune: snapshot event %d: replay made the %s decision at iter %d, snapshot logged iter %d",
					i, ev.Kind, got.Iter, ev.Rollout.Iter)
			}
			*verified++
		case eventKnowledge:
			if *verified >= len(s.events) || s.events[*verified].Kind != ev.Kind {
				return fmt.Errorf("tune: snapshot event %d: replay did not reproduce the logged knowledge query", i)
			}
			got, want := s.events[*verified].Knowledge, ev.Knowledge
			if (got == nil || got.Advice == nil) != (want == nil || want.Advice == nil) {
				return fmt.Errorf("tune: snapshot event %d: replayed knowledge query diverged from the logged advice", i)
			}
			*verified++
		default:
			return fmt.Errorf("tune: snapshot event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// verifyState cross-checks the snapshot's derived state summary against
// the replayed session.
func (s *Session) verifyState(want *sessionState) error {
	if want == nil {
		return nil
	}
	got := s.stateLocked()
	if want.Observations != got.Observations {
		return fmt.Errorf("tune: replayed repository holds %d observations, snapshot recorded %d", got.Observations, want.Observations)
	}
	if len(want.Models) != 0 && len(want.Models) != len(got.Models) {
		return fmt.Errorf("tune: replay produced %d cluster models, snapshot recorded %d", len(got.Models), len(want.Models))
	}
	if len(want.Vocabulary) != 0 && len(want.Vocabulary) != len(got.Vocabulary) {
		return fmt.Errorf("tune: replayed vocabulary holds %d tokens, snapshot recorded %d", len(got.Vocabulary), len(want.Vocabulary))
	}
	if want.Rollout != nil {
		gr := got.Rollout
		if gr == nil || gr.Phase != want.Rollout.Phase ||
			gr.Promotions != want.Rollout.Promotions || gr.Rollbacks != want.Rollout.Rollbacks {
			return fmt.Errorf("tune: replayed rollout state %+v does not match snapshot %+v", gr, want.Rollout)
		}
	}
	return nil
}
