package tune

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/baselines"
	"repro/internal/featurize"
	"repro/internal/knobs"
)

// Factory builds a Tuner from a resolved Config.
type Factory func(cfg Config) (Tuner, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a backend to the registry under the given name,
// replacing any previous registration. Safe for concurrent use.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = f
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Open builds the named backend from a Config. An empty name uses
// cfg.Backend (and its default, "onlinetune").
func Open(name string, cfg Config) (Tuner, error) {
	cfg = cfg.withDefaults()
	if name == "" {
		name = cfg.Backend
	}
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("tune: unknown backend %q (have %v)", name, Backends())
	}
	return f(cfg)
}

// The built-in backends: OnlineTune, its stopping variant, and the
// paper's baselines.
func init() {
	Register("onlinetune", func(cfg Config) (Tuner, error) {
		space, err := cfg.space()
		if err != nil {
			return nil, err
		}
		initial, err := cfg.initial(space)
		if err != nil {
			return nil, err
		}
		return NewOnlineTuner(space, featurize.ContextDim, initial, cfg.Seed, cfg.options()), nil
	})
	Register("stopping", func(cfg Config) (Tuner, error) {
		space, err := cfg.space()
		if err != nil {
			return nil, err
		}
		initial, err := cfg.initial(space)
		if err != nil {
			return nil, err
		}
		opts := cfg.options()
		// The stopping backend's paused iterations bypass core's rollout
		// routing (they hold the applied configuration without consulting
		// the controller), so a paused mid-canary session would emit
		// advice with no shadow configuration and the comparison window
		// could never fill. Reject the combination instead of wedging.
		if opts.Rollout.Enabled {
			return nil, fmt.Errorf("tune: the canary rollout is not supported with the stopping backend")
		}
		sc := cfg.stopping()
		return NewStoppingTuner(space, featurize.ContextDim, initial, cfg.Seed, opts, sc.EITrigger, sc.Patience), nil
	})
	simple := map[string]func(cfg Config, space *knobs.Space) Tuner{
		"bo":         func(cfg Config, s *knobs.Space) Tuner { return baselines.NewBO(s, cfg.Seed) },
		"ddpg":       func(cfg Config, s *knobs.Space) Tuner { return baselines.NewDDPG(s, cfg.Seed) },
		"restune":    func(cfg Config, s *knobs.Space) Tuner { return baselines.NewResTune(s, cfg.Seed) },
		"qtune":      func(cfg Config, s *knobs.Space) Tuner { return baselines.NewQTune(s, featurize.ContextDim, cfg.Seed) },
		"mysqltuner": func(cfg Config, s *knobs.Space) Tuner { return baselines.NewMysqlTuner(s) },
		"dba":        func(cfg Config, s *knobs.Space) Tuner { return baselines.NewFixed("DBADefault", s.DBADefault()) },
		"mysql":      func(cfg Config, s *knobs.Space) Tuner { return baselines.NewFixed("MysqlDefault", s.Default()) },
	}
	for name, build := range simple {
		build := build
		Register(name, func(cfg Config) (Tuner, error) {
			space, err := cfg.space()
			if err != nil {
				return nil, err
			}
			return build(cfg, space), nil
		})
	}
}
