package tune

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dbsim"
	"repro/internal/knobs"
	"repro/internal/rollout"
	"repro/internal/workload"
)

// rolloutStep drives one suggest → eval → report interval of a
// rollout-enabled session against primary and shadow simulator
// replicas, attaching the shadow measurement whenever the advice staged
// a canary.
func rolloutStep(t *testing.T, s *Session, primary, shadow *dbsim.Instance, gen workload.Generator, i int) Advice {
	t.Helper()
	adv, err := s.Suggest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	w := gen.At(i)
	res := primary.Eval(adv.Config, w, dbsim.EvalOptions{})
	dba := primary.DBAResult(w)
	o := Outcome{
		Workload:    WorkloadFromSnapshot(w),
		Stats:       primary.OptimizerStats(w),
		Metrics:     res.Metrics,
		Performance: res.Objective(w.OLAP),
		Baseline:    dba.Objective(w.OLAP),
		Failed:      res.Failed,
	}
	if adv.RolloutPhase == RolloutCanary || adv.RolloutPhase == RolloutRevalidate {
		if adv.ShadowConfig == nil || adv.ShadowUnit == nil {
			t.Fatalf("iter %d: %s advice without a staged shadow configuration: %+v", i, adv.RolloutPhase, adv)
		}
		sres := shadow.Eval(adv.ShadowConfig, w, dbsim.EvalOptions{})
		o.Shadow = &ShadowOutcome{Performance: sres.Objective(w.OLAP), Failed: sres.Failed}
	}
	if err := s.Report(o); err != nil {
		t.Fatal(err)
	}
	return adv
}

// TestSessionRolloutEndToEnd drives a rollout-enabled session through
// the simulator and asserts the canary machinery works through the
// public API: canaries are staged, decisions are made, the event log
// records them, and the primary only ever runs promoted configurations.
func TestSessionRolloutEndToEnd(t *testing.T) {
	cfg := Config{Space: "case5", Seed: 7, Rollout: &RolloutConfig{}}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Rollout().Phase; got != rollout.PhaseSteady {
		t.Fatalf("fresh rollout-enabled session phase = %q, want steady", got)
	}

	primary := dbsim.New(knobs.CaseStudy5(), 9)
	shadow := dbsim.New(knobs.CaseStudy5(), 1009)
	gen := workload.NewYCSB(5)
	canaries := 0
	for i := 0; i < 120; i++ {
		adv := rolloutStep(t, s, primary, shadow, gen, i)
		if adv.RolloutPhase == RolloutCanary {
			canaries++
		}
		if adv.RolloutPhase == "" {
			t.Fatalf("iter %d: rollout-enabled session produced advice without a phase", i)
		}
	}
	if canaries == 0 {
		t.Fatal("120 iterations never staged a canary")
	}
	st := s.Rollout()
	if st.Promotions+st.Rollbacks == 0 {
		t.Fatal("canaries staged but no promotion decision ever made")
	}
	// The snapshot log must carry the decisions.
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	decisions := 0
	for _, ev := range s.events {
		if ev.Kind == rollout.EventPromote || ev.Kind == rollout.EventRollback {
			if ev.Rollout == nil || ev.Rollout.Reason == "" {
				t.Fatalf("decision event without provenance: %+v", ev)
			}
			decisions++
		}
	}
	if decisions != st.Promotions+st.Rollbacks {
		t.Fatalf("event log records %d decisions, controller made %d", decisions, st.Promotions+st.Rollbacks)
	}
	// And the snapshot must restore.
	if _, err := Restore(data); err != nil {
		t.Fatalf("restoring rollout session: %v", err)
	}
}

// TestSnapshotRestoreRolloutProperty is the mid-rollout restart
// equivalence property: a rollout-enabled session snapshotted and
// restored every 7 iterations — deliberately landing inside comparison
// windows — must produce advice (including staged shadow configs and
// phases) bitwise identical to an uninterrupted session.
func TestSnapshotRestoreRolloutProperty(t *testing.T) {
	cfg := Config{Space: "case5", Seed: 7, Rollout: &RolloutConfig{Window: 3}}
	uninterrupted, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	interrupted, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	priA, priB := dbsim.New(knobs.CaseStudy5(), 9), dbsim.New(knobs.CaseStudy5(), 9)
	shA, shB := dbsim.New(knobs.CaseStudy5(), 1009), dbsim.New(knobs.CaseStudy5(), 1009)
	genA, genB := workload.NewYCSB(5), workload.NewYCSB(5)

	const iters = 100
	for i := 0; i < iters; i++ {
		if i > 0 && i%7 == 0 {
			data, err := interrupted.Snapshot()
			if err != nil {
				t.Fatalf("iter %d: Snapshot: %v", i, err)
			}
			interrupted, err = Restore(data)
			if err != nil {
				t.Fatalf("iter %d: Restore: %v", i, err)
			}
		}
		a := rolloutStep(t, uninterrupted, priA, shA, genA, i)
		b := rolloutStep(t, interrupted, priB, shB, genB, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("iter %d: advice diverged after mid-rollout restore\nuninterrupted: %+v\nrestored:      %+v", i, a, b)
		}
	}
	sa, sb := uninterrupted.Rollout(), interrupted.Rollout()
	if sa.Promotions != sb.Promotions || sa.Rollbacks != sb.Rollbacks || sa.Phase != sb.Phase {
		t.Fatalf("rollout state diverged: %+v vs %+v", sa, sb)
	}
	if sa.Promotions+sa.Rollbacks == 0 {
		t.Fatal("property run never exercised a promotion decision")
	}
}

// TestSnapshotV1ForwardCompat pins forward compatibility: a committed
// pre-rollout (version 1) snapshot must restore into the current
// session with the rollout defaulted to direct apply and keep serving.
func TestSnapshotV1ForwardCompat(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "snapshot_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Restore(data)
	if err != nil {
		t.Fatalf("restoring v1 snapshot: %v", err)
	}
	if s.Iter() != 3 {
		t.Fatalf("restored iter = %d, want 3", s.Iter())
	}
	if got := s.Rollout().Phase; got != rollout.PhaseDirect {
		t.Fatalf("v1 session rollout phase = %q, want direct (defaulted)", got)
	}
	adv, err := s.Suggest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if adv.RolloutPhase != "" {
		t.Fatalf("direct-apply advice reports rollout phase %q", adv.RolloutPhase)
	}
	// A re-snapshot of the restored session is written at the current
	// version.
	reSnap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(reSnap, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != SnapshotVersion {
		t.Fatalf("re-snapshot version = %d, want %d", doc.Version, SnapshotVersion)
	}
}

// TestRolloutOverHTTP mirrors the CI api-smoke flow in-process: a
// rollout-enabled session is driven through the HTTP API to a canary
// promote and a forced rollback, with the rollout endpoint reporting
// each phase transition.
func TestRolloutOverHTTP(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	cfg := Config{Space: "case5", Seed: 3, Rollout: &RolloutConfig{Window: 2}}
	var info SessionInfo
	doJSON(t, srv, "POST", "/v1/sessions", map[string]any{"id": "canary", "config": cfg}, http.StatusCreated, &info)
	if info.RolloutPhase != RolloutSteady {
		t.Fatalf("created session rollout phase = %q", info.RolloutPhase)
	}
	var st RolloutStatus
	doJSON(t, srv, "GET", "/v1/sessions/canary/rollout", nil, http.StatusOK, &st)
	if st.Phase != rollout.PhaseSteady || st.Window != 2 {
		t.Fatalf("rollout status %+v", st)
	}
	doJSON(t, srv, "GET", "/v1/sessions/nope/rollout", nil, http.StatusNotFound, nil)

	// outcome fabricates a steady OLTP interval; the perf wiggle keeps
	// the GP posterior non-degenerate so a canary eventually starts.
	outcome := func(i int, shadow *ShadowOutcome) Outcome {
		return Outcome{
			Workload: Workload{
				Statements: []Statement{{SQL: "SELECT c_balance FROM customer WHERE c_id = 42"}},
				Unlimited:  true, ReadFrac: 0.8, Skew: 0.5, DataGB: 18,
			},
			Stats:       OptimizerStats{RowsExamined: 120, FilterPct: 30, IndexUsedFrac: 1},
			Metrics:     Metrics{BufferPoolHitRate: 0.96, QPS: 20000},
			Performance: 105 + float64(i%5),
			Baseline:    90,
			Shadow:      shadow,
		}
	}

	// Drive to the first canary, then feed a strong shadow → promote.
	drive := func(maxIters int, shadowPerf float64, shadowFailed bool, want string) {
		t.Helper()
		for i := 0; i < maxIters; i++ {
			var adv Advice
			doJSON(t, srv, "POST", "/v1/sessions/canary/suggest", nil, http.StatusOK, &adv)
			var sh *ShadowOutcome
			if adv.RolloutPhase == RolloutCanary || adv.RolloutPhase == RolloutRevalidate {
				sh = &ShadowOutcome{Performance: shadowPerf, Failed: shadowFailed}
			}
			doJSON(t, srv, "POST", "/v1/sessions/canary/report", outcome(i, sh), http.StatusOK, nil)
			doJSON(t, srv, "GET", "/v1/sessions/canary/rollout", nil, http.StatusOK, &st)
			if st.LastEvent != nil && st.LastEvent.Kind == want {
				return
			}
		}
		t.Fatalf("no %s decision within %d iterations (status %+v)", want, maxIters, st)
	}
	drive(150, 130, false, rollout.EventPromote)
	if st.Promotions != 1 {
		t.Fatalf("promotions = %d after promote drive", st.Promotions)
	}
	// Next canary: a failing shadow forces an immediate rollback.
	drive(150, 0, true, rollout.EventRollback)
	if st.Rollbacks < 1 {
		t.Fatalf("rollbacks = %d after rollback drive", st.Rollbacks)
	}
	if st.LastEvent.Reason == "" {
		t.Fatal("rollback event missing its reason")
	}
}

// TestStoppingBackendRejectsRollout pins the unsupported combination:
// the stopping backend's paused iterations bypass the rollout routing,
// so enabling the canary rollout must fail loudly at session creation.
func TestStoppingBackendRejectsRollout(t *testing.T) {
	_, err := NewSession(Config{Space: "case5", Backend: "stopping", Rollout: &RolloutConfig{}})
	if err == nil {
		t.Fatal("stopping backend accepted a rollout config")
	}
	// Without rollout the backend still opens.
	if _, err := NewSession(Config{Space: "case5", Backend: "stopping"}); err != nil {
		t.Fatalf("plain stopping backend failed: %v", err)
	}
}
