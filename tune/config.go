package tune

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dbsim"
	"repro/internal/knobs"
	"repro/internal/rollout"
)

// TunerOptions are the OnlineTune algorithm options (confidence-bound
// width, subspace/clustering/safety switches, …).
type TunerOptions = core.Options

// DefaultTunerOptions mirrors the paper's settings.
func DefaultTunerOptions() TunerOptions { return core.DefaultOptions() }

// RolloutConfig enables the staged rollout for OnlineTune-based
// backends: recommendations that differ from the primary's last-good
// configuration are staged on a second replica and promoted only after
// a clean comparison window (see the README's "Blue/green rollout"
// section). Zero fields take the rollout defaults (canary mode,
// window 3, threshold 2%).
type RolloutConfig struct {
	// Mode selects the rollout mode: "canary" (default) stages
	// candidates on a non-serving shadow replica; "bluegreen" keeps two
	// live replicas (blue serves while green is tuned) and swaps them
	// with an explicit, cost-measured switchover on promotion.
	Mode string `json:"mode,omitempty"`
	// Window is the number of paired primary/staged observations a
	// promotion decision requires.
	Window int `json:"window,omitempty"`
	// RegressionThreshold is the relative staged-vs-primary regression
	// beyond which a candidate is rolled back.
	RegressionThreshold float64 `json:"regression_threshold,omitempty"`
	// MaxChain bounds the previous-good rollback chain depth (0 = 8).
	MaxChain int `json:"max_chain,omitempty"`
	// SwitchoverIntervals is how many intervals a bluegreen switchover
	// occupies (0 = 1); canary mode ignores it.
	SwitchoverIntervals int `json:"switchover_intervals,omitempty"`
	// PromoteMargin is the fraction of τ a staged mean must clear ABOVE
	// the safety threshold before promotion (0 = promote on touching τ,
	// the default). Set it to the regression threshold for a promote
	// gate symmetric with the drift rollback.
	PromoteMargin float64 `json:"promote_margin,omitempty"`
}

// validate rejects unknown rollout modes at session creation.
func (rc *RolloutConfig) validate() error {
	if rc == nil {
		return nil
	}
	switch rc.Mode {
	case "", rollout.ModeCanary, rollout.ModeBlueGreen:
		return nil
	default:
		return fmt.Errorf("tune: unknown rollout mode %q (want %q or %q)", rc.Mode, rollout.ModeCanary, rollout.ModeBlueGreen)
	}
}

// rolloutMode resolves the configured rollout mode ("" when the rollout
// is disabled).
func (c Config) rolloutMode() string {
	if c.Rollout == nil {
		return ""
	}
	if c.Rollout.Mode == "" {
		return rollout.ModeCanary
	}
	return c.Rollout.Mode
}

// StoppingConfig tunes the stopping-and-triggering backend: pause
// reconfiguration after Patience consecutive intervals whose best
// Expected Improvement stays below EITrigger·|τ|.
type StoppingConfig struct {
	EITrigger float64 `json:"ei_trigger,omitempty"`
	Patience  int     `json:"patience,omitempty"`
}

// Config declaratively describes a tuning session: the knob space and
// backend by name, the seed, and the safety/stopping options. The zero
// value is valid — OnlineTune on the full 40-knob MySQL space with the
// paper's defaults.
type Config struct {
	// Space selects the knob space by name from the engine-keyed
	// registry (Spaces lists them): "mysql57" (default, 40 knobs; "full"
	// is accepted as an alias), "case5" (the 5-knob case-study subset),
	// "pg16" (PostgreSQL 16, 31 knobs) or "pg-case" (its 5-knob
	// subset). The space's engine tag selects the simulator behavior
	// and white-box rule set.
	Space string `json:"space,omitempty"`
	// Backend selects the tuner by registry name (Backends lists them);
	// default "onlinetune".
	Backend string `json:"backend,omitempty"`
	// Seed makes every random choice — candidate sampling, featurizer
	// pre-training, exploration — deterministic.
	Seed int64 `json:"seed,omitempty"`
	// Initial is the initial safety-set configuration; defaults to the
	// space's DBA default. Missing knobs keep their DBA default.
	Initial KnobConfig `json:"initial,omitempty"`
	// DisableSafety turns off all safety machinery (vanilla contextual
	// BO — the paper's OnlineTune-w/o-safe ablation).
	DisableSafety bool `json:"disable_safety,omitempty"`
	// Rollout enables the staged canary rollout; nil keeps direct apply
	// (recommendations go straight to the primary — the ablation and
	// the pre-rollout behavior).
	Rollout *RolloutConfig `json:"rollout,omitempty"`
	// Stopping configures the "stopping" backend; ignored otherwise.
	// Zero fields take the defaults (EITrigger 0.05, Patience 4).
	Stopping *StoppingConfig `json:"stopping,omitempty"`
	// Options overrides every algorithm option at once (ablations,
	// benchmark variants). DisableSafety still applies on top.
	Options *TunerOptions `json:"options,omitempty"`
	// Hardware overrides the instance description the white-box rules
	// reason about; defaults to the paper's 8 vCPU / 16 GB instance.
	Hardware *Hardware `json:"hardware,omitempty"`
	// Knowledge opts the session into the fleet knowledge base: its
	// tuner queries for warm-start advice when cold (and after a drift
	// rollback) and contributes every safe observation and canary
	// promotion. The Manager sets it on sessions it creates while its own
	// knowledge base is enabled; it round-trips through snapshots so a
	// restored session replays its logged advice even with no store
	// attached.
	Knowledge bool `json:"knowledge,omitempty"`

	// fleet is the Manager-owned store backing the session's knowledge
	// adapter; nil outside a knowledge-enabled Manager (queries miss,
	// contributions drop, replay still works from the event log).
	fleet *fleetKnowledge
	// know is the session's adapter, built by NewSession when Knowledge
	// is set; options() hands it to the core tuner.
	know *knowAdapter
}

// Spaces lists the knob-space names Config.Space accepts.
func Spaces() []string { return knobs.SpaceNames() }

// OpenSpace resolves a knob-space name ("" defaults to mysql57).
func OpenSpace(name string) (*knobs.Space, error) {
	return Config{Space: name}.space()
}

// withDefaults fills the defaulted fields.
func (c Config) withDefaults() Config {
	if c.Space == "" {
		c.Space = "mysql57"
	}
	if c.Backend == "" {
		c.Backend = "onlinetune"
	}
	return c
}

// space resolves the named knob space through the engine registry.
func (c Config) space() (*knobs.Space, error) {
	name := c.Space
	if name == "" {
		name = "mysql57"
	}
	s, err := knobs.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("tune: %w", err)
	}
	return s, nil
}

// initial resolves the initial safe configuration for a space: the DBA
// default overlaid with any explicitly configured knob values.
func (c Config) initial(space *knobs.Space) (KnobConfig, error) {
	cfg := space.DBADefault()
	for name, v := range c.Initial {
		k, ok := space.Get(name)
		if !ok {
			return nil, fmt.Errorf("tune: initial config sets unknown knob %q", name)
		}
		cfg[name] = k.ClampRaw(v)
	}
	return cfg, nil
}

// options resolves the algorithm options.
func (c Config) options() core.Options {
	opts := core.DefaultOptions()
	if c.Options != nil {
		opts = *c.Options
	}
	if c.DisableSafety {
		opts.UseSafety = false
	}
	if c.Rollout != nil {
		opts.Rollout = rollout.Policy{
			Enabled:             true,
			Mode:                c.Rollout.Mode,
			Window:              c.Rollout.Window,
			RegressionThreshold: c.Rollout.RegressionThreshold,
			MaxChain:            c.Rollout.MaxChain,
			SwitchoverIntervals: c.Rollout.SwitchoverIntervals,
			PromoteMargin:       c.Rollout.PromoteMargin,
		}
	}
	if c.know != nil {
		opts.Knowledge = c.know
	}
	return opts
}

// stopping resolves the stopping-backend parameters.
func (c Config) stopping() StoppingConfig {
	sc := StoppingConfig{EITrigger: 0.05, Patience: 4}
	if c.Stopping != nil {
		if c.Stopping.EITrigger > 0 {
			sc.EITrigger = c.Stopping.EITrigger
		}
		if c.Stopping.Patience > 0 {
			sc.Patience = c.Stopping.Patience
		}
	}
	return sc
}

// hardware resolves the instance description.
func (c Config) hardware() Hardware {
	if c.Hardware != nil {
		return *c.Hardware
	}
	return dbsim.DefaultHardware()
}
