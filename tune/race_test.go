package tune

import (
	"context"
	"sync"
	"testing"

	"repro/internal/dbsim"
	"repro/internal/knobs"
	"repro/internal/workload"
)

// TestSessionConcurrentHammer hammers one session from many goroutines
// mixing Suggest, Report, Snapshot and read accessors — the regression
// test for the LastRecommendation/Timings concurrency hazard (run under
// -race in CI). Correctness of interleaved results is not asserted
// (ordering is the caller's concern); absence of data races and torn
// state is.
func TestSessionConcurrentHammer(t *testing.T) {
	s, err := NewSession(Config{Space: "case5", Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	space := knobs.CaseStudy5()
	gen := workload.NewYCSB(13)

	const goroutines = 8
	const opsPer = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			in := dbsim.New(space, int64(g))
			for i := 0; i < opsPer; i++ {
				switch (g + i) % 4 {
				case 0:
					if _, err := s.Suggest(context.Background()); err != nil {
						t.Error(err)
						return
					}
				case 1:
					w := gen.At(g*opsPer + i)
					res := in.Eval(space.DBADefault(), w, dbsim.EvalOptions{})
					dba := in.DBAResult(w)
					if err := s.Report(Outcome{
						Workload:    WorkloadFromSnapshot(w),
						Stats:       in.OptimizerStats(w),
						Metrics:     res.Metrics,
						Performance: res.Objective(w.OLAP),
						Baseline:    dba.Objective(w.OLAP),
						Failed:      res.Failed,
					}); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := s.Snapshot(); err != nil {
						t.Error(err)
						return
					}
				default:
					s.Iter()
					s.Best()
					s.Backend()
				}
			}
		}()
	}
	wg.Wait()
}

// TestCoreConcurrentAccessors hammers the underlying tuner directly:
// Recommend/Observe in one goroutine racing the accessor methods that
// previously returned unsynchronized pointers into tuner state.
func TestCoreConcurrentAccessors(t *testing.T) {
	space := knobs.CaseStudy5()
	a := NewOnlineTuner(space, 4, space.DBADefault(), 17, DefaultTunerOptions())
	in := dbsim.New(space, 17)
	gen := workload.NewYCSB(17)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if rec := a.T.LastRecommendation(); rec != nil {
					_ = rec.SafetySetSize
					_ = rec.Unit
				}
				_ = a.T.Timings().Iters
				_ = a.T.NumModels()
				_, _ = a.T.Best()
				_ = a.T.Labels()
			}
		}()
	}

	ctx := make([]float64, 4)
	for i := 0; i < 40; i++ {
		w := gen.At(i)
		dba := in.DBAResult(w)
		ctx[0], ctx[1], ctx[2], ctx[3] = w.ReadFrac, w.ScanFrac, w.Skew, w.DataGB/100
		env := Env{Iter: i, Snapshot: w, Ctx: ctx, Metrics: Metrics{}, Tau: dba.Objective(w.OLAP), OLAP: w.OLAP, HW: in.HW}
		cfg := a.Propose(env)
		res := in.Eval(cfg, w, dbsim.EvalOptions{})
		a.Feedback(env, cfg, res)
	}
	close(done)
	wg.Wait()
}
