package tune

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wal"
)

// TestManagerGroupCommitRolloutRestartEquivalence is the off-lock /
// group-commit restart-equivalence property test: a rollout-enabled
// session is driven through a canary promotion AND a shadow-failure
// rollback while eviction churn (MaxResident 1) and periodic restarts
// force it through WAL+journal recovery, all with the cross-session
// committer on. Advice and rollout status must stay bitwise identical
// to an uninterrupted in-memory reference across every boundary.
func TestManagerGroupCommitRolloutRestartEquivalence(t *testing.T) {
	stateDir := t.TempDir()
	opts := ManagerOptions{
		MaxResident: 1, CompactMin: 8, NoFsync: true,
		CommitInterval: 300 * time.Microsecond, CommitBatch: 2,
	}
	m, err := NewManagerOpts(stateDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Space: "case5", Seed: 3, Rollout: &RolloutConfig{Window: 2}}
	if _, err := m.Create("canary", cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("filler", Config{Space: "case5", Seed: 8}); err != nil {
		t.Fatal(err)
	}
	ref, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var groupCommits int64
	restart := func() {
		groupCommits += m.Stats().GroupCommits
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if m, err = NewManagerOpts(stateDir, opts); err != nil {
			t.Fatal(err)
		}
	}
	// step drives one interval on the managed session and the reference,
	// feeding canary-phase advice the given shadow measurement, and
	// checks advice + rollout status stay identical.
	step := func(i int, shadow ShadowOutcome) RolloutStatus {
		t.Helper()
		if i > 0 && i%25 == 0 {
			restart()
		}
		if i%10 == 5 {
			// Touching the filler under MaxResident 1 evicts the canary.
			if _, err := m.Suggest(context.Background(), "filler"); err != nil {
				t.Fatal(err)
			}
		}
		adv, err := m.Suggest(context.Background(), "canary")
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		want, err := ref.Suggest(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(adv, want) {
			t.Fatalf("iter %d: advice diverged\nmanaged:   %+v\nreference: %+v", i, adv, want)
		}
		o := goldenOutcome(i)
		o.Performance = 105 + float64(i%5)
		o.Baseline = 90
		if adv.RolloutPhase == RolloutCanary {
			sh := shadow
			o.Shadow = &sh
		}
		if _, err := m.Report("canary", o); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if err := ref.Report(o); err != nil {
			t.Fatal(err)
		}
		st, err := m.Rollout("canary")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(st, ref.Rollout()) {
			t.Fatalf("iter %d: rollout status diverged\nmanaged:   %+v\nreference: %+v", i, st, ref.Rollout())
		}
		return st
	}

	const maxIters = 240
	i := 0
	// Phase 1: a strong shadow promotes the candidate.
	for ; i < maxIters; i++ {
		if step(i, ShadowOutcome{Performance: 130}).Promotions > 0 {
			break
		}
	}
	if i == maxIters {
		t.Fatalf("no canary promotion within %d iterations", maxIters)
	}
	// Phase 2: a failing shadow forces a rollback, across the same
	// restart/eviction churn.
	for ; i < maxIters; i++ {
		if step(i, ShadowOutcome{Performance: 0, Failed: true}).Rollbacks > 0 {
			break
		}
	}
	if i == maxIters {
		t.Fatalf("no rollback within %d iterations", maxIters)
	}
	groupCommits += m.Stats().GroupCommits
	if groupCommits == 0 {
		t.Fatal("run never exercised the group-commit path")
	}
	if st := m.Stats(); st.Evictions == 0 && st.Hydrations == 0 {
		t.Fatalf("run saw no eviction churn: %+v", st)
	}
}

// TestManagerGroupCommitDurabilityHammer drives concurrent sessions
// through the group-commit path while the checkpoint fault seam fails
// in bursts: every operation must either succeed or surface
// ErrDurability (never a lost ack), advice must track each session's
// uninterrupted reference even through failures (memory advances), and
// once the fault clears one clean interval per session flushes the
// backlog so a restart recovers every history exactly.
func TestManagerGroupCommitDurabilityHammer(t *testing.T) {
	stateDir := t.TempDir()
	opts := ManagerOptions{
		NoFsync:        true,
		CommitInterval: 200 * time.Microsecond,
		CommitBatch:    4,
	}
	m, err := NewManagerOpts(stateDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	const iters = 12
	refs := make([]*Session, n)
	for g := 0; g < n; g++ {
		cfg := Config{Space: "case5", Seed: int64(200 + g)}
		if _, err := m.Create(fmt.Sprintf("db-%d", g), cfg); err != nil {
			t.Fatal(err)
		}
		if refs[g], err = NewSession(cfg); err != nil {
			t.Fatal(err)
		}
	}

	// Fault bursts: 5 consecutive persist attempts fail, then 5 succeed.
	// Burst interiors defeat the manager's single retry (→ ErrDurability);
	// burst edges exercise the retry-absorbed path.
	var faulting atomic.Bool
	var calls atomic.Int64
	m.checkpointFailure = func() error {
		if faulting.Load() && (calls.Add(1)/5)%2 == 0 {
			return errors.New("injected checkpoint fault")
		}
		return nil
	}
	faulting.Store(true)

	var durabilityErrs atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := fmt.Sprintf("db-%d", g)
			for i := 0; i < iters; i++ {
				adv, err := m.Suggest(context.Background(), id)
				if err != nil {
					if !errors.Is(err, ErrDurability) {
						t.Errorf("%s iter %d: Suggest: %v", id, i, err)
						return
					}
					durabilityErrs.Add(1)
				}
				want, err := refs[g].Suggest(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(adv, want) {
					t.Errorf("%s iter %d: advice diverged under faults", id, i)
					return
				}
				o := goldenOutcome(i)
				iter, err := m.Report(id, o)
				if err != nil {
					if !errors.Is(err, ErrDurability) {
						t.Errorf("%s iter %d: Report: %v", id, i, err)
						return
					}
					durabilityErrs.Add(1)
				}
				if iter != i+1 {
					t.Errorf("%s iter %d: session did not advance in memory: iter %d", id, i, iter)
					return
				}
				if err := refs[g].Report(o); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if durabilityErrs.Load() == 0 {
		t.Fatal("fault bursts never surfaced ErrDurability — the hammer tested nothing")
	}

	// Fault clears: one clean interval per session flushes each backlog.
	faulting.Store(false)
	for g := 0; g < n; g++ {
		managedStep(t, m, fmt.Sprintf("db-%d", g), refs[g], iters)
	}
	st := m.Stats()
	if st.GroupCommits == 0 {
		t.Fatalf("hammer never exercised group commit: %+v", st)
	}
	if st.DurabilityRetries == 0 {
		t.Fatalf("burst edges never exercised the retry: %+v", st)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := NewManagerOpts(stateDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	for g := 0; g < n; g++ {
		managedStep(t, m2, fmt.Sprintf("db-%d", g), refs[g], iters+1)
	}
}

// TestManagerJournalBootRecovery reconstructs the crash the journal
// exists for: a session log that lost its flushed-but-unfsynced tail
// (power failure), with the group-commit journal holding the only
// durable copy of those records — plus a stale duplicate and a record
// for a session with no on-disk base, which recovery must drop. Boot
// must patch exactly the lost records, truncate the journal, and serve
// reference-identical advice.
func TestManagerJournalBootRecovery(t *testing.T) {
	stateDir := t.TempDir()
	opts := ManagerOptions{NoFsync: true, CompactMin: 1000}
	m, err := NewManagerOpts(stateDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Space: "case5", Seed: 7}
	if _, err := m.Create("db", cfg); err != nil {
		t.Fatal(err)
	}
	ref, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 6
	for i := 0; i < iters; i++ {
		managedStep(t, m, "db", ref, i)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Cut the last records off the session log, as a power failure after
	// Flush (page cache) but before any fsync would.
	walPath := filepath.Join(stateDir, "db.wal")
	lg, recs, err := wal.Open(walPath, wal.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	lg.Close()
	const drop = 3
	if len(recs) <= drop {
		t.Fatalf("only %d wal records; need more than %d", len(recs), drop)
	}
	keep := len(recs) - drop
	if err := os.Remove(walPath); err != nil {
		t.Fatal(err)
	}
	lg2, _, err := wal.Open(walPath, wal.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range recs[:keep] {
		if err := lg2.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg2.Commit(); err != nil {
		t.Fatal(err)
	}
	lg2.Close()

	// The journal's surviving contents: a record the log already holds
	// (skipped), the lost tail (patched), and a ghost session's record
	// (dropped — no base file anchors it).
	jPath := filepath.Join(stateDir, "fleet.journal")
	j, _, err := wal.Open(jPath, wal.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(wal.EncodeJournalRecord("db", recs[keep-1])); err != nil {
		t.Fatal(err)
	}
	for _, p := range recs[keep:] {
		if err := j.Append(wal.EncodeJournalRecord("db", p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(wal.EncodeJournalRecord("ghost", recs[0])); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	m2, err := NewManagerOpts(stateDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if st := m2.Stats(); st.JournalPatchedRecords != drop {
		t.Fatalf("patched %d journal records, want %d (stats %+v)", st.JournalPatchedRecords, drop, st)
	}
	if fi, err := os.Stat(jPath); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not emptied after recovery: size %d, err %v", fi.Size(), err)
	}
	if _, err := os.Stat(filepath.Join(stateDir, "ghost.wal")); !os.IsNotExist(err) {
		t.Fatal("recovery materialized a log for the ghost session")
	}
	managedStep(t, m2, "db", ref, iters)
}

// TestWalEncoderMatchesMarshal pins the zero-alloc encoder's contract:
// its payloads are byte-for-byte what json.Marshal produces, so pooling
// cannot perturb WAL contents or replay.
func TestWalEncoderMatchesMarshal(t *testing.T) {
	evs := encoderBenchEvents(t, 5)
	wenc := walEncoders.Get().(*walEncoder)
	defer walEncoders.Put(wenc)
	payloads, err := wenc.encode(evs, 2, 7, "canary")
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != len(evs) {
		t.Fatalf("encoded %d payloads for %d events", len(payloads), len(evs))
	}
	for i, ev := range evs {
		want, err := json.Marshal(walRecord{Idx: 2 + i, Iter: 7, Phase: "canary", Event: ev})
		if err != nil {
			t.Fatal(err)
		}
		if string(payloads[i]) != string(want) {
			t.Fatalf("payload %d diverges from json.Marshal\npooled:  %s\nmarshal: %s", i, payloads[i], want)
		}
	}
}

// encoderBenchEvents produces a realistic event tail by driving a real
// session for a few intervals.
func encoderBenchEvents(tb testing.TB, intervals int) []event {
	tb.Helper()
	s, err := NewSession(Config{Space: "case5", Seed: 11})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < intervals; i++ {
		if _, err := s.Suggest(context.Background()); err != nil {
			tb.Fatal(err)
		}
		if err := s.Report(goldenOutcome(i)); err != nil {
			tb.Fatal(err)
		}
	}
	return s.eventsSince(0)
}

// BenchmarkCheckpointEncode audits the pooled encoder with -benchmem:
// the pooled arm must report ~zero allocations per operation at steady
// state, against the per-record json.Marshal it replaced.
func BenchmarkCheckpointEncode(b *testing.B) {
	evs := encoderBenchEvents(b, 8)
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wenc := walEncoders.Get().(*walEncoder)
			if _, err := wenc.encode(evs, 0, 8, ""); err != nil {
				b.Fatal(err)
			}
			walEncoders.Put(wenc)
		}
	})
	b.Run("marshal", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, ev := range evs {
				if _, err := json.Marshal(walRecord{Idx: j, Iter: 8, Event: ev}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
