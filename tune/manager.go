package tune

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fsutil"
	"repro/internal/knowledge"
	"repro/internal/wal"
)

// Sentinel errors the Manager wraps its failures with, so transports
// (tune.NewServer) can map them to statuses with errors.Is instead of
// matching message text.
var (
	// ErrNotFound marks operations on a session id that does not exist.
	ErrNotFound = errors.New("session not found")
	// ErrExists marks creation of a session id that is already taken.
	ErrExists = errors.New("session already exists")
	// ErrInvalid marks requests rejected by validation (bad session id,
	// unknown space/backend/knob in the config).
	ErrInvalid = errors.New("invalid request")
	// ErrDurability marks an operation whose in-memory effect succeeded
	// but whose checkpoint failed twice: the session advanced, the write
	// was NOT made durable, and the un-persisted events retry on the
	// next successful operation. Transports map it to 503 so clients
	// back off instead of resubmitting the same interval.
	ErrDurability = errors.New("durability failure")
)

// managerShards is the number of session-map shards. Session operations
// themselves serialize per session; the shards only bound contention on
// the id→session lookup, so a modest constant suffices.
const managerShards = 16

// Defaults for ManagerOptions zero values.
const (
	// DefaultMaxResident bounds how many sessions are hydrated in memory
	// at once before the least-recently-used is evicted back to its
	// compacted on-disk form.
	DefaultMaxResident = 1024
	// DefaultCompactMin is the minimum WAL tail length before a
	// compaction folds it into the base snapshot.
	DefaultCompactMin = 64
)

// ManagerOptions tunes fleet-scale serving behavior. The zero value is
// production defaults.
type ManagerOptions struct {
	// MaxResident bounds hydrated sessions in memory (0 = DefaultMaxResident,
	// negative = unlimited). Sessions beyond the bound are LRU-evicted to
	// their compacted base+log form and re-hydrated on first touch.
	MaxResident int
	// CompactMin is the minimum tail length before compaction
	// (0 = DefaultCompactMin). The effective threshold grows with the
	// base (max(CompactMin, base events)), keeping lifetime checkpoint
	// I/O linear in session length.
	CompactMin int
	// NoFsync skips fsyncs on WAL commits and base-snapshot writes.
	// For benchmarks and tests; a power failure may lose committed
	// intervals.
	NoFsync bool
	// FullSnapshots restores the pre-WAL durability strategy (rewrite
	// the whole <id>.json snapshot on every operation). Ablation arm
	// for the ext6 benchmark — not for serving.
	FullSnapshots bool
	// CommitInterval enables cross-session fsync group commit: every
	// session's WAL appends funnel into a shared journal whose single
	// fsync per batch window makes the whole batch durable, so a fleet
	// of N chatty sessions pays ~1 fsync per window instead of N.
	// 0 disables the committer (each operation fsyncs its own log — the
	// pre-group-commit behavior and the ext7 ablation arm); > 0 is the
	// batch window; < 0 enables the committer with no window (each
	// batch commits as soon as the committer picks it up — for tests).
	CommitInterval time.Duration
	// CommitBatch caps a group-commit batch: once this many operations
	// are waiting the batch commits without waiting out the window
	// (0 = wal.DefaultCommitBatch). Only meaningful with CommitInterval.
	CommitBatch int
	// Knowledge enables the fleet knowledge base: a shared cross-session
	// store of safe configurations and GP hyperparameters that every
	// session created by this manager contributes to and warm-starts
	// from. With a state directory it persists as fleet.knowledge (base)
	// plus fleet.knowledge-wal (contribution tail) and survives restarts.
	Knowledge bool
}

// Manager multiplexes many concurrent tuning sessions behind sharded
// locks, optionally persisting every session to a state directory and
// reloading on demand.
//
// Durability: each operation appends its events to the session's
// write-ahead log (<id>.wal) with one group-commit fsync — O(1) I/O per
// interval — and a periodic compaction folds the tail into an atomic
// base snapshot (<id>.base.json), so lifetime checkpoint bytes stay
// linear in session length instead of quadratic. With CommitInterval
// set, the fsync itself is shared fleet-wide: appends land in the
// session log unsynced and in a shared journal (fleet.journal) whose
// single fsync per batch window makes every session in the batch
// durable at once; session logs settle their sync debt lazily at
// journal rotation, compaction, eviction and shutdown. Recovery loads the
// base and replays the tail through the snapshot verification
// machinery; deterministic replay makes the recovered session
// bitwise-identical to the one that crashed.
//
// Memory: sessions hydrate lazily. Boot reads only snapshot headers and
// WAL tails (O(#sessions)); a session's history is replayed on its
// first touch, and once more sessions are resident than MaxResident the
// least-recently-used is compacted and dropped from memory. A fleet of
// thousands of mostly-idle sessions costs a bounded working set.
type Manager struct {
	stateDir string
	opts     ManagerOptions
	shards   [managerShards]managerShard

	// committer is the shared group-commit pipeline (nil when
	// CommitInterval is 0 or the manager is in-memory only).
	committer *wal.Committer

	// know is the fleet knowledge base (nil unless ManagerOptions.Knowledge).
	know *fleetKnowledge

	// lmu guards the LRU list of resident (hydrated) sessions and the
	// resident count. It never nests with a session's mu or op gate:
	// LRU bookkeeping runs under the gate alone.
	lmu      sync.Mutex
	lru      *list.List // of *managedSession, front = most recent
	resident int

	hydrations        atomic.Int64
	evictions         atomic.Int64
	compactions       atomic.Int64
	checkpointBytes   atomic.Int64
	durabilityRetries atomic.Int64
	// fsyncs counts every logical sync point issued for durability —
	// WAL commits, journal batch syncs, rotation syncs and atomic base
	// writes — even under NoFsync, so benchmarks can compare commit
	// strategies without paying for real flushes.
	fsyncs     atomic.Int64
	sweptTemps int // set once at boot
	// journalPatched is how many records boot recovered from the shared
	// journal into session logs (set once at boot).
	journalPatched int

	// checkpointFailure, when non-nil, is consulted before every persist
	// attempt. Test seam for injecting durability faults (tests often
	// run as root, where permission-based injection is a no-op).
	checkpointFailure func() error
}

type managerShard struct {
	mu       sync.RWMutex
	sessions map[string]*managedSession
}

// managedSession is one registry entry. The entry outlives eviction:
// s is nil while the session lives only on disk.
//
// Concurrency: mu guards only the flags (busy, deleted) and is held for
// microseconds. The heavyweight state — s, log, persisted, baseEvents,
// legacy — is guarded by the op GATE (busy + cond): acquire claims it,
// release hands it off, and both transitions happen under mu, so gate
// holders access the state without any lock held. That keeps candidate
// scoring, checkpoint serialization and the group-commit fsync wait off
// every mutex while same-session operations still serialize (single
// flight) and replay stays bitwise-deterministic. Methods with the
// Locked suffix require the gate, not mu.
type managedSession struct {
	id string

	mu      sync.Mutex
	cond    *sync.Cond // lazily initialized under mu; signals gate release
	busy    bool       // op gate: set while an operation owns the session
	deleted bool
	s       *Session // nil when evicted
	log     *wal.Log // nil for legacy entries until first write
	// persisted is the index into the session's event log up to which
	// events are durable; everything at or past it is appended on the
	// next persist (the retry path after a durability failure).
	persisted int
	// baseEvents is how many events the on-disk base snapshot holds.
	baseEvents int
	// legacy marks sessions persisted as a whole <id>.json snapshot
	// (pre-WAL checkpoints, or FullSnapshots mode); cleared when the
	// first write migrates them to base+log.
	legacy bool

	// elem is this entry's LRU node (nil when not resident or selected
	// for eviction); guarded by Manager.lmu.
	elem *list.Element

	// info is the cached summary List and the boot scan serve without
	// hydrating the session.
	infoMu sync.Mutex
	info   SessionInfo
}

func (e *managedSession) Info() SessionInfo {
	e.infoMu.Lock()
	defer e.infoMu.Unlock()
	return e.info
}

func (e *managedSession) setInfo(in SessionInfo) {
	e.infoMu.Lock()
	e.info = in
	e.infoMu.Unlock()
}

// acquire claims the entry's op gate, blocking behind the current
// holder. It returns false — without the gate — if the entry was
// deleted, in which case the caller re-resolves the id (it may have
// been recreated under a fresh entry).
func (e *managedSession) acquire() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.busy && !e.deleted {
		if e.cond == nil {
			e.cond = sync.NewCond(&e.mu)
		}
		e.cond.Wait()
	}
	if e.deleted {
		return false
	}
	e.busy = true
	return true
}

// release hands the gate back and wakes waiters.
func (e *managedSession) release() {
	e.mu.Lock()
	e.busy = false
	if e.cond != nil {
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// dropLogLocked closes and forgets the WAL handle after a write error
// left it in an unknown state; the next persist rewrites an atomic base
// instead of appending to a possibly-torn log.
func (e *managedSession) dropLogLocked() {
	if e.log != nil {
		e.log.Close()
		e.log = nil
	}
}

// SessionRollout is the rollout summary nested in SessionInfo: the
// configured mode ("canary" or "bluegreen"; empty for direct apply) and
// the current phase.
type SessionRollout struct {
	Mode  string `json:"mode,omitempty"`
	Phase string `json:"phase"`
}

// SessionInfo summarizes one managed session.
type SessionInfo struct {
	ID      string `json:"id"`
	Backend string `json:"backend"`
	Space   string `json:"space"`
	Iter    int    `json:"iter"`
	// Rollout is the session's rollout mode and phase.
	Rollout *SessionRollout `json:"rollout,omitempty"`
	// RolloutPhase is the deprecated flat form of Rollout.Phase, still
	// emitted alongside it.
	//
	// Deprecated: use Rollout.Phase.
	RolloutPhase string `json:"rollout_phase,omitempty"`
}

// withRollout fills the nested rollout summary (and its deprecated flat
// alias) from a phase and the session's configured mode.
func (in SessionInfo) withRollout(mode, phase string) SessionInfo {
	in.RolloutPhase = phase
	if phase == "" {
		return in
	}
	if phase == RolloutDirect {
		mode = ""
	}
	in.Rollout = &SessionRollout{Mode: mode, Phase: phase}
	return in
}

// ManagerStats counts the manager's serving and durability activity.
type ManagerStats struct {
	// Sessions is the total session count, resident or not.
	Sessions int `json:"sessions"`
	// Hydrated is how many sessions are resident in memory.
	Hydrated int `json:"hydrated"`
	// Evicted is how many sessions currently live only on disk.
	Evicted int `json:"evicted"`
	// Hydrations / Evictions / Compactions are lifetime counters.
	Hydrations  int64 `json:"hydrations"`
	Evictions   int64 `json:"evictions"`
	Compactions int64 `json:"compactions"`
	// CheckpointBytes is the total bytes written for durability (WAL
	// frames plus base snapshots) since the manager started.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	// DurabilityRetries counts persist attempts that needed the retry.
	DurabilityRetries int64 `json:"durability_retries"`
	// SweptTempFiles is how many stale checkpoint temps boot removed.
	SweptTempFiles int `json:"swept_temp_files"`
	// Fsyncs counts every logical durability sync point issued (WAL
	// commits, journal batch syncs, rotation syncs, atomic base writes);
	// counted even under NoFsync so ablations stay comparable.
	Fsyncs int64 `json:"fsyncs"`
	// GroupCommits is how many cross-session batches the shared
	// committer has flushed (0 when group commit is off).
	GroupCommits int64 `json:"group_commits"`
	// DegradedCommits is how many of those batches fell back to
	// per-session fsyncs because the shared journal failed.
	DegradedCommits int64 `json:"degraded_commits"`
	// JournalPatchedRecords is how many WAL records boot recovered from
	// the shared journal into session logs.
	JournalPatchedRecords int `json:"journal_patched_records,omitempty"`
	// Knowledge summarizes the fleet knowledge base (nil when disabled):
	// entries, lifetime contributions, queries/warm-starts this process,
	// and approximate resident bytes.
	Knowledge *knowledge.Stats `json:"knowledge,omitempty"`
}

// NewManager returns a manager with default options. A non-empty
// stateDir enables durability: the directory is created if missing,
// verified writable, and existing sessions are registered (but not
// hydrated) from their on-disk form.
func NewManager(stateDir string) (*Manager, error) {
	return NewManagerOpts(stateDir, ManagerOptions{})
}

// NewManagerOpts is NewManager with explicit ManagerOptions.
func NewManagerOpts(stateDir string, opts ManagerOptions) (*Manager, error) {
	m := &Manager{stateDir: stateDir, opts: opts, lru: list.New()}
	for i := range m.shards {
		m.shards[i].sessions = map[string]*managedSession{}
	}
	if stateDir == "" {
		if opts.Knowledge {
			k, err := m.openKnowledge()
			if err != nil {
				return nil, fmt.Errorf("tune: opening fleet knowledge base: %w", err)
			}
			m.know = k
		}
		return m, nil
	}
	if err := fsutil.EnsureWritableDir(stateDir); err != nil {
		return nil, fmt.Errorf("tune: state dir: %w", err)
	}
	// Recover the shared group-commit journal BEFORE scanning sessions:
	// records whose only durable copy is the journal are patched back
	// into their session logs, so the scan (and every later hydration)
	// sees complete tails. Runs regardless of this boot's CommitInterval
	// — the previous process may have crashed with the committer on.
	if err := m.recoverJournal(); err != nil {
		return nil, fmt.Errorf("tune: recovering group-commit journal: %w", err)
	}
	entries, err := os.ReadDir(stateDir)
	if err != nil {
		return nil, fmt.Errorf("tune: reading state dir: %w", err)
	}
	type diskSession struct{ base, wal, legacy bool }
	found := map[string]*diskSession{}
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.HasPrefix(name, ".") {
			// A crash between CreateTemp and rename orphans an atomic-write
			// temp; session ids cannot start with a dot, so anything
			// dot-prefixed here is sweepable.
			if os.Remove(m.stateDir+string(os.PathSeparator)+name) == nil {
				m.sweptTemps++
			}
			continue
		}
		var id string
		var mark func(*diskSession)
		switch {
		case strings.HasSuffix(name, ".base.json"):
			id, mark = strings.TrimSuffix(name, ".base.json"), func(d *diskSession) { d.base = true }
		case strings.HasSuffix(name, ".wal"):
			id, mark = strings.TrimSuffix(name, ".wal"), func(d *diskSession) { d.wal = true }
		case strings.HasSuffix(name, ".json"):
			id, mark = strings.TrimSuffix(name, ".json"), func(d *diskSession) { d.legacy = true }
		default:
			continue
		}
		if validID(id) != nil {
			continue
		}
		d := found[id]
		if d == nil {
			d = &diskSession{}
			found[id] = d
		}
		mark(d)
	}
	for id, d := range found {
		switch {
		case !d.base && !d.legacy:
			// An orphan tail: the crash happened before the session's first
			// base rename, so there is nothing to anchor a replay to.
			os.Remove(m.walPath(id))
			continue
		case d.base && d.legacy:
			// Crash mid-migration: the base+log pair supersedes the legacy
			// snapshot; finish removing it.
			os.Remove(m.legacyPath(id))
		}
		e := &managedSession{id: id, legacy: !d.base}
		if err := m.peekInfo(e); err != nil {
			return nil, fmt.Errorf("tune: scanning session %q: %w", id, err)
		}
		m.shard(id).sessions[id] = e
	}
	if opts.Knowledge {
		k, err := m.openKnowledge()
		if err != nil {
			return nil, fmt.Errorf("tune: opening fleet knowledge base: %w", err)
		}
		m.know = k
	}
	if opts.CommitInterval != 0 {
		c, err := wal.OpenCommitter(m.journalPath(), wal.CommitterOptions{
			Interval:    opts.CommitInterval,
			Batch:       opts.CommitBatch,
			NoFsync:     opts.NoFsync,
			SyncCounter: &m.fsyncs,
		})
		if err != nil {
			return nil, fmt.Errorf("tune: opening group-commit journal: %w", err)
		}
		m.committer = c
	}
	return m, nil
}

// journalPath is the shared group-commit journal's location. The name
// carries none of the session-file suffixes, so the boot scan never
// mistakes it for a session.
func (m *Manager) journalPath() string {
	return filepath.Join(m.stateDir, "fleet.journal")
}

// recoverJournal patches session WALs from the shared journal at boot.
// A crash can leave records whose only durable copy is the journal (the
// per-session log was flushed but its fsync deferred to rotation), so
// each session's journal records that contiguously extend its log's
// intact tail are appended — and fsynced — before the journal is
// truncated. Records for sessions with no on-disk files (deleted before
// the crash) and records out of sequence (a deleted-then-recreated id's
// stale leftovers) are dropped: a genuine tail is always contiguous,
// because rotation fsyncs every log before the journal truncates.
func (m *Manager) recoverJournal() error {
	recovered, err := wal.ReadJournal(m.journalPath())
	if err != nil {
		return err
	}
	for id, payloads := range recovered {
		if validID(id) != nil {
			continue
		}
		if _, err := os.Stat(m.basePath(id)); err != nil {
			continue // no base to anchor a replay: deleted or never durable
		}
		patched, err := m.patchSessionLog(id, payloads)
		if err != nil {
			return fmt.Errorf("session %q: %w", id, err)
		}
		m.journalPatched += patched
	}
	if len(recovered) == 0 {
		return nil
	}
	// Every journaled record now lives in a fsynced session log (or was
	// stale); empty the journal so the next boot starts clean.
	f, err := os.OpenFile(m.journalPath(), os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(0); err != nil {
		return err
	}
	m.fsyncs.Add(1)
	if !m.opts.NoFsync {
		return f.Sync()
	}
	return nil
}

// patchSessionLog appends the journal payloads that contiguously extend
// the session's log and fsyncs the result.
func (m *Manager) patchSessionLog(id string, payloads [][]byte) (int, error) {
	lg, recs, err := wal.Open(m.walPath(id), m.walOptions())
	if err != nil {
		return 0, err
	}
	defer lg.Close()
	var next int
	if len(recs) > 0 {
		var last walRecord
		if err := json.Unmarshal(recs[len(recs)-1], &last); err != nil {
			return 0, fmt.Errorf("final wal record: %w", err)
		}
		next = last.Idx + 1
	} else {
		// An empty log anchors at the base snapshot's event count.
		data, err := os.ReadFile(m.basePath(id))
		if err != nil {
			return 0, err
		}
		f, err := parseSnapshot(data)
		if err != nil {
			return 0, err
		}
		next = len(f.Events)
	}
	patched := 0
	for _, p := range payloads {
		var rec walRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			return patched, fmt.Errorf("journal payload: %w", err)
		}
		if rec.Idx != next {
			continue // already in the log, pre-base stale, or a recreated id's leftovers
		}
		if err := lg.Append(p); err != nil {
			return patched, err
		}
		next++
		patched++
	}
	if patched == 0 {
		return 0, nil
	}
	return patched, lg.Commit()
}

// validID restricts session ids to filesystem- and URL-safe names.
func validID(id string) error {
	if id == "" || len(id) > 128 {
		return fmt.Errorf("tune: %w: session id must be 1–128 characters", ErrInvalid)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("tune: %w: session id %q contains %q (allowed: letters, digits, - _ .)", ErrInvalid, id, c)
		}
	}
	if strings.HasPrefix(id, ".") {
		return fmt.Errorf("tune: %w: session id %q must not start with a dot", ErrInvalid, id)
	}
	if strings.HasSuffix(id, ".base") {
		// "<x>.base"'s legacy file would collide with <x>'s base snapshot.
		return fmt.Errorf("tune: %w: session id %q ends with reserved suffix %q", ErrInvalid, id, ".base")
	}
	return nil
}

func (m *Manager) shard(id string) *managerShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &m.shards[h.Sum32()%managerShards]
}

// entry looks up the session entry under id and claims its op gate. An
// entry deleted while waiting for the gate is retried: the id may have
// been recreated under a fresh entry.
func (m *Manager) entry(id string) (*managedSession, error) {
	for {
		sh := m.shard(id)
		sh.mu.RLock()
		e, ok := sh.sessions[id]
		sh.mu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("tune: %w: %q", ErrNotFound, id)
		}
		if e.acquire() {
			return e, nil
		}
	}
}

// withSession runs fn on the hydrated session entry under id holding
// its op gate — no mutex: same-session requests single-flight behind
// the gate while hydration replay, candidate scoring and the checkpoint
// fsync wait proceed without blocking List, Stats, eviction or any
// other session. Afterwards, whatever the hydration displaced past the
// residency bound is evicted; the evictor try-acquires, so it never
// stalls behind a long-running operation.
func (m *Manager) withSession(id string, fn func(e *managedSession) error) error {
	e, err := m.entry(id)
	if err != nil {
		return err
	}
	var victims []*managedSession
	err = func() error {
		defer e.release()
		if err := m.hydrateLocked(e); err != nil {
			return err
		}
		victims = m.noteResident(e)
		return fn(e)
	}()
	m.evict(victims)
	return err
}

func (m *Manager) maxResident() int {
	switch {
	case m.opts.MaxResident > 0:
		return m.opts.MaxResident
	case m.opts.MaxResident < 0:
		return int(^uint(0) >> 1) // unlimited
	default:
		return DefaultMaxResident
	}
}

// noteResident marks e as the most recently used resident session and
// pops everything past the residency bound off the LRU tail. Callers
// hold e's op gate; the returned victims must be evicted AFTER
// releasing it.
func (m *Manager) noteResident(e *managedSession) []*managedSession {
	m.lmu.Lock()
	defer m.lmu.Unlock()
	if e.elem != nil {
		m.lru.MoveToFront(e.elem)
	} else {
		e.elem = m.lru.PushFront(e)
		m.resident++
	}
	if m.stateDir == "" {
		return nil // nowhere to evict to
	}
	var victims []*managedSession
	for max := m.maxResident(); m.resident > max; {
		back := m.lru.Back()
		if back == nil || back == e.elem {
			break
		}
		v := back.Value.(*managedSession)
		m.lru.Remove(back)
		v.elem = nil
		m.resident--
		victims = append(victims, v)
	}
	return victims
}

// evict persists and drops each victim from memory. A victim touched
// between selection and here has re-entered the LRU (elem != nil) and
// is skipped; one whose flush fails is re-inserted rather than dropped,
// since losing un-persisted events is never acceptable.
func (m *Manager) evict(victims []*managedSession) {
	for _, v := range victims {
		m.evictOne(v)
	}
}

func (m *Manager) evictOne(v *managedSession) {
	v.mu.Lock()
	if v.deleted {
		v.mu.Unlock()
		return
	}
	if v.busy {
		v.mu.Unlock()
		// An operation re-touched the victim after it was popped; its own
		// noteResident ran before the pop, so nothing re-inserts it — put
		// it back ourselves rather than leaking a resident session.
		m.reinsert(v)
		return
	}
	v.busy = true
	v.mu.Unlock()
	defer v.release()
	if v.deleted || v.s == nil || v.elem != nil {
		return
	}
	// Flushing the pending tail is enough: hydration replays base+tail,
	// so eviction must NOT force a compaction — under LRU churn that
	// would rewrite the base snapshot on every eviction and reintroduce
	// the quadratic lifetime I/O the WAL exists to avoid. Compaction
	// stays on its geometric schedule inside tryPersistLocked.
	if err := m.tryPersistLocked(v); err != nil {
		m.reinsert(v)
		return
	}
	if m.committer != nil && v.log != nil {
		// The flushed tail's durability may lean on the shared journal;
		// an evicted log's handle closes, so settle the debt now — one
		// fsync — and release the journal's rotation hold on it.
		if err := v.log.SyncFile(); err != nil {
			m.reinsert(v)
			return
		}
		m.committer.Forget(v.log.Path())
	}
	v.dropLogLocked()
	v.s = nil
	m.evictions.Add(1)
}

// reinsert puts a victim that could not be evicted back on the LRU.
func (m *Manager) reinsert(v *managedSession) {
	m.lmu.Lock()
	if v.elem == nil {
		v.elem = m.lru.PushBack(v)
		m.resident++
	}
	m.lmu.Unlock()
}

// persistLocked makes the entry's pending events durable, retrying once
// and wrapping a double failure in ErrDurability. The in-memory session
// has already advanced either way — the persisted cursor keeps the
// unflushed events queued, so the next successful operation self-heals.
func (m *Manager) persistLocked(e *managedSession) error {
	defer e.setInfo(sessionInfo(e.id, e.s))
	if m.stateDir == "" {
		return nil
	}
	err := m.tryPersistLocked(e)
	if err == nil {
		return nil
	}
	m.durabilityRetries.Add(1)
	if err2 := m.tryPersistLocked(e); err2 != nil {
		return fmt.Errorf("tune: %w: session %q advanced in memory but two checkpoint attempts failed (%v; retry: %v); its un-persisted events will be flushed by the next successful operation",
			ErrDurability, e.id, err, err2)
	}
	return nil
}

// Create builds a new session under id. It fails if the id is taken.
func (m *Manager) Create(id string, cfg Config) (*Session, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	if m.know != nil {
		// Fleet knowledge is manager-wide: every session it creates joins
		// the shared store. The flag round-trips through the snapshot, so a
		// later boot without the store still replays the logged advice.
		cfg.Knowledge = true
		cfg.fleet = m.know
	}
	// Build outside all locks: construction pre-trains the featurizer,
	// and concurrent creates must not serialize behind it.
	s, err := NewSession(cfg)
	if err != nil {
		return nil, fmt.Errorf("tune: %w: %w", ErrInvalid, err)
	}
	// The entry is born holding its own op gate, so concurrent requests
	// for the id queue behind the initial persist.
	e := &managedSession{id: id, s: s, legacy: m.opts.FullSnapshots, busy: true}
	sh := m.shard(id)
	sh.mu.Lock()
	if _, ok := sh.sessions[id]; ok {
		sh.mu.Unlock()
		return nil, fmt.Errorf("tune: %w: %q", ErrExists, id)
	}
	sh.sessions[id] = e
	sh.mu.Unlock()

	var victims []*managedSession
	err = func() error {
		defer e.release()
		if m.stateDir != "" {
			if perr := m.tryPersistLocked(e); perr != nil {
				// Roll the registration back: a session that could not be
				// made durable must not exist in memory only, or a client
				// retry hits "already exists" for a session that would
				// vanish on restart.
				e.mu.Lock()
				e.deleted = true
				e.mu.Unlock()
				e.dropLogLocked()
				sh.mu.Lock()
				if sh.sessions[id] == e {
					delete(sh.sessions, id)
				}
				sh.mu.Unlock()
				return perr
			}
		}
		e.setInfo(sessionInfo(id, s))
		victims = m.noteResident(e)
		return nil
	}()
	if err != nil {
		return nil, err
	}
	m.evict(victims)
	return s, nil
}

// Get returns the session under id, hydrating it if evicted.
func (m *Manager) Get(id string) (*Session, error) {
	var s *Session
	err := m.withSession(id, func(e *managedSession) error {
		s = e.s
		return nil
	})
	return s, err
}

// Delete removes the session under id and its durable files. The op
// gate is held across the removal, so an in-flight operation's persist
// cannot resurrect the files afterwards.
func (m *Manager) Delete(id string) error {
	e, err := m.entry(id)
	if err != nil {
		return err
	}
	defer e.release()
	e.mu.Lock()
	e.deleted = true
	e.mu.Unlock()
	sh := m.shard(id)
	sh.mu.Lock()
	if sh.sessions[id] == e {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	m.lmu.Lock()
	if e.elem != nil {
		m.lru.Remove(e.elem)
		e.elem = nil
		m.resident--
	}
	m.lmu.Unlock()
	if m.committer != nil && e.log != nil {
		// Journal records for a deleted session are moot; release the
		// rotation hold so the handle's close cannot stall truncation.
		m.committer.Forget(e.log.Path())
	}
	e.dropLogLocked()
	e.s = nil
	if m.stateDir != "" {
		for _, p := range []string{m.basePath(id), m.walPath(id), m.legacyPath(id)} {
			if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// List summarizes all sessions, sorted by id. Evicted sessions are
// served from their cached summaries — listing a fleet never hydrates
// anything.
func (m *Manager) List() []SessionInfo {
	var out []SessionInfo
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, e := range sh.sessions {
			out = append(out, e.Info())
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats reports serving and durability counters.
func (m *Manager) Stats() ManagerStats {
	var st ManagerStats
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		st.Sessions += len(sh.sessions)
		sh.mu.RUnlock()
	}
	m.lmu.Lock()
	st.Hydrated = m.resident
	m.lmu.Unlock()
	if st.Hydrated > st.Sessions {
		st.Hydrated = st.Sessions
	}
	st.Evicted = st.Sessions - st.Hydrated
	st.Hydrations = m.hydrations.Load()
	st.Evictions = m.evictions.Load()
	st.Compactions = m.compactions.Load()
	st.CheckpointBytes = m.checkpointBytes.Load()
	st.DurabilityRetries = m.durabilityRetries.Load()
	st.SweptTempFiles = m.sweptTemps
	st.Fsyncs = m.fsyncs.Load()
	if m.committer != nil {
		st.GroupCommits = m.committer.Batches()
		st.DegradedCommits = m.committer.DegradedBatches()
	}
	st.JournalPatchedRecords = m.journalPatched
	if m.know != nil {
		kst := m.know.stats()
		st.Knowledge = &kst
	}
	return st
}

// KnowledgeStats returns the fleet knowledge base's counters; ok is
// false when the manager runs without one.
func (m *Manager) KnowledgeStats() (knowledge.Stats, bool) {
	if m.know == nil {
		return knowledge.Stats{}, false
	}
	return m.know.stats(), true
}

// KnowledgeExport serializes the fleet knowledge base as versioned JSON
// suitable for KnowledgeImport on another fleet.
func (m *Manager) KnowledgeExport() ([]byte, error) {
	if m.know == nil {
		return nil, fmt.Errorf("tune: %w: fleet knowledge base disabled", ErrNotFound)
	}
	return m.know.export()
}

// KnowledgeImport merges an exported knowledge snapshot into the fleet
// store (and makes the result durable). It returns how many records were
// merged.
func (m *Manager) KnowledgeImport(data []byte) (int, error) {
	if m.know == nil {
		return 0, fmt.Errorf("tune: %w: fleet knowledge base disabled", ErrNotFound)
	}
	return m.know.importSnapshot(data)
}

// Suggest runs Session.Suggest on the named session and persists the
// new events. On ErrDurability the advice is still returned: the
// session advanced in memory and will flush with the next operation.
func (m *Manager) Suggest(ctx context.Context, id string) (Advice, error) {
	var adv Advice
	err := m.withSession(id, func(e *managedSession) error {
		a, err := e.s.Suggest(ctx)
		if err != nil {
			return err
		}
		adv = a
		return m.persistLocked(e)
	})
	return adv, err
}

// Report runs Session.Report on the named session and persists the new
// events. It returns the session's iteration count after the report.
func (m *Manager) Report(id string, o Outcome) (int, error) {
	var iter int
	err := m.withSession(id, func(e *managedSession) error {
		if err := e.s.Report(o); err != nil {
			return err
		}
		iter = e.s.Iter()
		return m.persistLocked(e)
	})
	return iter, err
}

// Snapshot serializes the named session.
func (m *Manager) Snapshot(id string) ([]byte, error) {
	var data []byte
	err := m.withSession(id, func(e *managedSession) error {
		var serr error
		data, serr = e.s.Snapshot()
		return serr
	})
	return data, err
}

// Rollout returns the named session's canary rollout status.
func (m *Manager) Rollout(id string) (RolloutStatus, error) {
	var st RolloutStatus
	err := m.withSession(id, func(e *managedSession) error {
		st = e.s.Rollout()
		return nil
	})
	return st, err
}

// Close flushes and closes every resident session's log. The shared
// committer shuts down first — its final rotation fsyncs every log the
// journal still covers and truncates the journal, so a clean shutdown
// leaves nothing for the next boot's recovery — then each session's log
// is closed under its op gate. The manager must not be used afterwards
// (a request racing Close degrades to a per-session fsync and stays
// durable; it is not lost).
func (m *Manager) Close() error {
	var first error
	if m.committer != nil {
		if err := m.committer.Close(); err != nil {
			first = err
		}
	}
	if m.know != nil {
		if err := m.know.Close(); err != nil && first == nil {
			first = err
		}
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		es := make([]*managedSession, 0, len(sh.sessions))
		for _, e := range sh.sessions {
			es = append(es, e) //tunevet:ignore determinism -- shutdown close order: each log's Close is independent and nothing here feeds the event log or the wire
		}
		sh.mu.RUnlock()
		for _, e := range es {
			if !e.acquire() {
				continue // deleted concurrently
			}
			if e.log != nil {
				if err := e.log.Close(); err != nil && first == nil {
					first = err
				}
				e.log = nil
			}
			e.release()
		}
	}
	return first
}
