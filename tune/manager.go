package tune

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/fsutil"
)

// Sentinel errors the Manager wraps its failures with, so transports
// (tune.NewServer) can map them to statuses with errors.Is instead of
// matching message text.
var (
	// ErrNotFound marks operations on a session id that does not exist.
	ErrNotFound = errors.New("session not found")
	// ErrExists marks creation of a session id that is already taken.
	ErrExists = errors.New("session already exists")
	// ErrInvalid marks requests rejected by validation (bad session id,
	// unknown space/backend/knob in the config).
	ErrInvalid = errors.New("invalid request")
)

// managerShards is the number of session-map shards. Session operations
// themselves serialize per session; the shards only bound contention on
// the id→session lookup, so a modest constant suffices.
const managerShards = 16

// Manager multiplexes many concurrent tuning sessions behind sharded
// locks, optionally checkpointing every session to a state directory
// (one <id>.json snapshot per session, written atomically) and
// reloading them on construction.
//
// Durability tradeoff: a checkpoint rewrites the session's full
// snapshot (whose event log grows with every interval), and restoring
// replays that log through the tuner — cost proportional to session
// length on both sides. At tuning cadence (one interval every few
// minutes, histories of hundreds of events) both are milliseconds;
// incremental log appends are the upgrade path if sessions ever grow
// orders of magnitude longer.
type Manager struct {
	stateDir string
	shards   [managerShards]managerShard
}

type managerShard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

// SessionInfo summarizes one managed session.
type SessionInfo struct {
	ID      string `json:"id"`
	Backend string `json:"backend"`
	Space   string `json:"space"`
	Iter    int    `json:"iter"`
	// RolloutPhase is the session's canary rollout state ("direct",
	// "steady" or "canary").
	RolloutPhase string `json:"rollout_phase,omitempty"`
}

// NewManager returns a manager. A non-empty stateDir enables
// durability: the directory is created if missing, verified writable,
// and any existing session snapshots in it are restored.
func NewManager(stateDir string) (*Manager, error) {
	m := &Manager{stateDir: stateDir}
	for i := range m.shards {
		m.shards[i].sessions = map[string]*Session{}
	}
	if stateDir == "" {
		return m, nil
	}
	if err := fsutil.EnsureWritableDir(stateDir); err != nil {
		return nil, fmt.Errorf("tune: state dir: %w", err)
	}
	entries, err := os.ReadDir(stateDir)
	if err != nil {
		return nil, fmt.Errorf("tune: reading state dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		id := strings.TrimSuffix(e.Name(), ".json")
		if err := validID(id); err != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(stateDir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("tune: reading session %q: %w", id, err)
		}
		s, err := Restore(data)
		if err != nil {
			return nil, fmt.Errorf("tune: restoring session %q: %w", id, err)
		}
		sh := m.shard(id)
		sh.sessions[id] = s
	}
	return m, nil
}

// validID restricts session ids to filesystem- and URL-safe names.
func validID(id string) error {
	if id == "" || len(id) > 128 {
		return fmt.Errorf("tune: %w: session id must be 1–128 characters", ErrInvalid)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("tune: %w: session id %q contains %q (allowed: letters, digits, - _ .)", ErrInvalid, id, c)
		}
	}
	if strings.HasPrefix(id, ".") {
		return fmt.Errorf("tune: %w: session id %q must not start with a dot", ErrInvalid, id)
	}
	return nil
}

func (m *Manager) shard(id string) *managerShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &m.shards[h.Sum32()%managerShards]
}

// Create builds a new session under id. It fails if the id is taken.
func (m *Manager) Create(id string, cfg Config) (*Session, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	// Build outside the shard lock: construction pre-trains the
	// featurizer, and concurrent creates on other shards (or even this
	// one) must not serialize behind it.
	s, err := NewSession(cfg)
	if err != nil {
		return nil, fmt.Errorf("tune: %w: %w", ErrInvalid, err)
	}
	sh := m.shard(id)
	sh.mu.Lock()
	if _, ok := sh.sessions[id]; ok {
		sh.mu.Unlock()
		return nil, fmt.Errorf("tune: %w: %q", ErrExists, id)
	}
	sh.sessions[id] = s
	sh.mu.Unlock()
	if err := m.checkpoint(id, s); err != nil {
		// Roll the registration back: a session that could not be made
		// durable must not exist in memory only, or a client retry hits
		// "already exists" for a session that would vanish on restart.
		sh.mu.Lock()
		if sh.sessions[id] == s {
			delete(sh.sessions, id)
		}
		sh.mu.Unlock()
		return nil, err
	}
	return s, nil
}

// Get returns the session under id.
func (m *Manager) Get(id string) (*Session, bool) {
	sh := m.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s, ok := sh.sessions[id]
	return s, ok
}

// Delete removes the session under id (and its checkpoint file). The
// shard lock is held across the file removal so an in-flight
// checkpoint (which re-checks membership under the read lock) cannot
// resurrect the file afterwards.
func (m *Manager) Delete(id string) error {
	sh := m.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.sessions[id]; !ok {
		return fmt.Errorf("tune: %w: %q", ErrNotFound, id)
	}
	delete(sh.sessions, id)
	if m.stateDir != "" {
		if err := os.Remove(filepath.Join(m.stateDir, id+".json")); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// List summarizes all sessions, sorted by id.
func (m *Manager) List() []SessionInfo {
	var out []SessionInfo
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for id, s := range sh.sessions {
			out = append(out, sessionInfo(id, s))
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Suggest runs Session.Suggest on the named session and checkpoints it.
func (m *Manager) Suggest(ctx context.Context, id string) (Advice, error) {
	s, ok := m.Get(id)
	if !ok {
		return Advice{}, fmt.Errorf("tune: %w: %q", ErrNotFound, id)
	}
	adv, err := s.Suggest(ctx)
	if err != nil {
		return Advice{}, err
	}
	return adv, m.checkpoint(id, s)
}

// Report runs Session.Report on the named session and checkpoints it.
// It returns the session's iteration count after the report.
func (m *Manager) Report(id string, o Outcome) (int, error) {
	s, ok := m.Get(id)
	if !ok {
		return 0, fmt.Errorf("tune: %w: %q", ErrNotFound, id)
	}
	if err := s.Report(o); err != nil {
		return 0, err
	}
	return s.Iter(), m.checkpoint(id, s)
}

// Snapshot serializes the named session.
func (m *Manager) Snapshot(id string) ([]byte, error) {
	s, ok := m.Get(id)
	if !ok {
		return nil, fmt.Errorf("tune: %w: %q", ErrNotFound, id)
	}
	return s.Snapshot()
}

// Rollout returns the named session's canary rollout status.
func (m *Manager) Rollout(id string) (RolloutStatus, error) {
	s, ok := m.Get(id)
	if !ok {
		return RolloutStatus{}, fmt.Errorf("tune: %w: %q", ErrNotFound, id)
	}
	return s.Rollout(), nil
}

// checkpoint writes the session snapshot to the state directory
// (tmp-file + rename, so a crash never leaves a torn checkpoint). It
// holds the shard read lock and re-checks membership, so a checkpoint
// racing Delete can never recreate a deleted session's file.
func (m *Manager) checkpoint(id string, s *Session) error {
	if m.stateDir == "" {
		return nil
	}
	sh := m.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.sessions[id] != s {
		return nil // deleted (or replaced) concurrently; nothing to persist
	}
	data, err := s.Snapshot()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(m.stateDir, "."+id+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(m.stateDir, id+".json"))
}
